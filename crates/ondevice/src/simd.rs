//! Runtime-dispatched SIMD dequantization kernels.
//!
//! Every cache miss in the serving store and every embedding gather in
//! the on-device engine funnels through
//! [`decode_row_into`](crate::quant::decode_row_into); this module is
//! the vector back end underneath it. On `x86_64` the kernels come in
//! three tiers — AVX2, SSE2 (the architectural baseline, always
//! present), and the scalar reference — selected once per process by
//! [`active_kernel`]. Everywhere else the scalar reference runs.
//!
//! **Bit-exactness is a hard contract**: for any input — including
//! NaNs with arbitrary payloads, infinities, subnormals and signed
//! zeros — every tier produces bit-identical `f32` output to
//! [`scalar`]. That is why
//!
//! * the f16 decoder is pure integer SIMD replicating
//!   [`f16_bits_to_f32`] branchlessly
//!   (hardware `F16C` would quiet signaling-NaN payloads);
//! * [`scale_add`] uses separate multiply + add, never FMA (a fused
//!   rounding would diverge from the scalar `x * v + w`);
//! * [`scale_mul`] exists apart from [`scale_add`] (`x * v + 0.0`
//!   would flip the sign of `-0.0`).
//!
//! The property is enforced by the `simd_equiv` proptest suite across
//! all dtypes, dims, alignments and non-finite inputs.
//!
//! # Forcing the scalar fallback
//!
//! Two knobs pin the dispatcher to [`Kernel::Scalar`] for testing:
//! the `MEMCOM_FORCE_SCALAR` environment variable (any value other
//! than empty or `0`, read once at first use) and the `force-scalar`
//! cargo feature (compile-time). CI runs the test suite both ways.

use std::sync::OnceLock;

use crate::quant::f16_bits_to_f32;

/// The kernel tier the dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable scalar reference (mandatory fallback, forced-scalar
    /// override, and every non-`x86_64` target).
    Scalar,
    /// 128-bit SSE2 — the `x86_64` architectural baseline.
    Sse2,
    /// 256-bit AVX2, detected at runtime via
    /// `is_x86_feature_detected!`.
    Avx2,
}

impl Kernel {
    /// Stable lower-snake name (log lines, bench labels, README).
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kernel tier every dispatching entry point in this module uses,
/// detected once per process (CPU features do not change under us, and
/// the forced-scalar override is meant as a process-wide pin, so the
/// first call wins).
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

fn detect() -> Kernel {
    if cfg!(feature = "force-scalar") || force_scalar_env() {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Kernel::Avx2
        } else {
            Kernel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Kernel::Scalar
    }
}

fn force_scalar_env() -> bool {
    match std::env::var("MEMCOM_FORCE_SCALAR") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

/// Copies `out.len()` little-endian `f32`s out of `bytes` (the F32
/// stored-row layout). Bit-exact for every pattern including NaNs.
///
/// # Panics
///
/// Panics when `bytes` holds fewer than `4 * out.len()` bytes.
pub fn copy_f32(bytes: &[u8], out: &mut [f32]) {
    assert!(bytes.len() >= out.len() * 4, "short f32 row");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified at runtime by active_kernel(); the
        // assert above covers the kernel's whole-slice access.
        Kernel::Avx2 => unsafe { x86::copy_f32_avx2(bytes, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 verified at runtime by active_kernel(); same
        // bounds contract as above.
        Kernel::Sse2 => unsafe { x86::copy_f32_sse2(bytes, out) },
        _ => scalar::copy_f32(bytes, out),
    }
}

/// Copies `rows = out.len() / cols` rows of `cols` little-endian
/// `f32`s out of a strided byte region — the page-gather primitive for
/// uncompressed tables whose stored stride exceeds the payload (e.g.
/// rows carrying trailing metadata).
///
/// # Panics
///
/// Panics when `cols == 0`, `out.len()` is not a multiple of `cols`,
/// `stride < 4 * cols`, or `src` is too short for the last row.
pub fn copy_f32_strided(src: &[u8], stride: usize, cols: usize, out: &mut [f32]) {
    assert!(cols > 0, "cols must be positive");
    assert_eq!(out.len() % cols, 0, "out must hold whole rows");
    assert!(stride >= cols * 4, "stride shorter than a row payload");
    let rows = out.len() / cols;
    if rows > 0 {
        assert!(
            src.len() >= (rows - 1) * stride + cols * 4,
            "short strided source"
        );
    }
    for (r, chunk) in out.chunks_exact_mut(cols).enumerate() {
        copy_f32(&src[r * stride..r * stride + cols * 4], chunk);
    }
}

/// Decodes `out.len()` little-endian IEEE-754 half-precision values
/// from `bytes`, bit-identical to
/// [`f16_bits_to_f32`] (signaling-NaN
/// payloads survive).
///
/// # Panics
///
/// Panics when `bytes` holds fewer than `2 * out.len()` bytes.
pub fn decode_f16(bytes: &[u8], out: &mut [f32]) {
    assert!(bytes.len() >= out.len() * 2, "short f16 row");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified at runtime by active_kernel(); the
        // assert above covers the kernel's whole-slice access.
        Kernel::Avx2 => unsafe { x86::decode_f16_avx2(bytes, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 verified at runtime by active_kernel(); same
        // bounds contract as above.
        Kernel::Sse2 => unsafe { x86::decode_f16_sse2(bytes, out) },
        _ => scalar::decode_f16(bytes, out),
    }
}

/// Dequantizes `out.len()` int8 codes: widen to `f32`, multiply by the
/// row `scale`.
///
/// # Panics
///
/// Panics when `bytes` holds fewer than `out.len()` bytes.
pub fn dequant_i8(bytes: &[u8], scale: f32, out: &mut [f32]) {
    assert!(bytes.len() >= out.len(), "short int8 row");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified at runtime by active_kernel(); the
        // assert above covers the kernel's whole-slice access.
        Kernel::Avx2 => unsafe { x86::dequant_i8_avx2(bytes, scale, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 verified at runtime by active_kernel(); same
        // bounds contract as above.
        Kernel::Sse2 => unsafe { x86::dequant_i8_sse2(bytes, scale, out) },
        _ => scalar::dequant_i8(bytes, scale, out),
    }
}

/// Dequantizes `out.len()` int4 codes (two per byte, even index in the
/// low nibble): unpack, sign-extend, widen, multiply by `scale`.
///
/// # Panics
///
/// Panics when `bytes` holds fewer than `out.len().div_ceil(2)` bytes.
pub fn dequant_i4(bytes: &[u8], scale: f32, out: &mut [f32]) {
    assert!(bytes.len() >= out.len().div_ceil(2), "short int4 row");
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified at runtime by active_kernel(); the
        // assert above covers the kernel's whole-slice access.
        Kernel::Avx2 => unsafe { x86::dequant_i4_avx2(bytes, scale, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 verified at runtime by active_kernel(); same
        // bounds contract as above.
        Kernel::Sse2 => unsafe { x86::dequant_i4_sse2(bytes, scale, out) },
        _ => scalar::dequant_i4(bytes, scale, out),
    }
}

/// Dequantizes `out.len()` int2 codes (four per byte). Stays scalar on
/// every tier: at serving dims the 2-bit unpack is load-bound and the
/// shuffle tax outweighs the arithmetic.
///
/// # Panics
///
/// Panics when `bytes` holds fewer than `out.len().div_ceil(4)` bytes.
pub fn dequant_i2(bytes: &[u8], scale: f32, out: &mut [f32]) {
    assert!(bytes.len() >= out.len().div_ceil(4), "short int2 row");
    scalar::dequant_i2(bytes, scale, out);
}

/// In-place `x ← x * v` over `out` — the MemCom reconstruction's
/// multiplier application. Kept separate from [`scale_add`] because
/// `x * v + 0.0` would flip `-0.0` to `+0.0` and break bit-exactness.
pub fn scale_mul(out: &mut [f32], v: f32) {
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified at runtime by active_kernel(); the
        // kernel only touches `out` within its own length.
        Kernel::Avx2 => unsafe { x86::scale_mul_avx2(out, v) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 verified at runtime by active_kernel(); same
        // bounds contract as above.
        Kernel::Sse2 => unsafe { x86::scale_mul_sse2(out, v) },
        _ => scalar::scale_mul(out, v),
    }
}

/// In-place `x ← x * v + w` over `out` — the MemCom reconstruction
/// with a bias scalar. Deliberately **not** FMA: the scalar reference
/// rounds the product and the sum separately, and fusing them would
/// produce different bits.
pub fn scale_add(out: &mut [f32], v: f32, w: f32) {
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 verified at runtime by active_kernel(); the
        // kernel only touches `out` within its own length.
        Kernel::Avx2 => unsafe { x86::scale_add_avx2(out, v, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 verified at runtime by active_kernel(); same
        // bounds contract as above.
        Kernel::Sse2 => unsafe { x86::scale_add_sse2(out, v, w) },
        _ => scalar::scale_add(out, v, w),
    }
}

/// The portable scalar reference kernels — the semantics every vector
/// tier must reproduce bit-for-bit, and the mandatory fallback for
/// loop tails, non-`x86_64` targets and the forced-scalar override.
pub mod scalar {
    use super::f16_bits_to_f32;

    /// Scalar [`copy_f32`](super::copy_f32).
    pub fn copy_f32(bytes: &[u8], out: &mut [f32]) {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = f32::from_le_bytes(c.try_into().expect("4-byte chunk"));
        }
    }

    /// Scalar [`decode_f16`](super::decode_f16).
    pub fn decode_f16(bytes: &[u8], out: &mut [f32]) {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(2)) {
            *o = f16_bits_to_f32(u16::from_le_bytes(c.try_into().expect("2-byte chunk")));
        }
    }

    /// Scalar [`dequant_i8`](super::dequant_i8).
    pub fn dequant_i8(bytes: &[u8], scale: f32, out: &mut [f32]) {
        for (o, &b) in out.iter_mut().zip(bytes.iter()) {
            *o = (b as i8) as f32 * scale;
        }
    }

    /// Scalar [`dequant_i4`](super::dequant_i4). Indexing is relative
    /// to the slice start, so callers handing over a loop tail must
    /// split at an even element index to preserve nibble parity.
    pub fn dequant_i4(bytes: &[u8], scale: f32, out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            let nib = if i % 2 == 0 {
                bytes[i / 2] & 0x0F
            } else {
                bytes[i / 2] >> 4
            };
            *o = sign_extend(nib, 4) as f32 * scale;
        }
    }

    /// Scalar [`dequant_i2`](super::dequant_i2) (element indexing
    /// relative to the slice start; tails must split at a multiple of
    /// four elements).
    pub fn dequant_i2(bytes: &[u8], scale: f32, out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            let q = (bytes[i / 4] >> ((i % 4) * 2)) & 0x03;
            *o = sign_extend(q, 2) as f32 * scale;
        }
    }

    /// Scalar [`scale_mul`](super::scale_mul).
    pub fn scale_mul(out: &mut [f32], v: f32) {
        for o in out.iter_mut() {
            *o *= v;
        }
    }

    /// Scalar [`scale_add`](super::scale_add).
    pub fn scale_add(out: &mut [f32], v: f32, w: f32) {
        for o in out.iter_mut() {
            *o = *o * v + w;
        }
    }

    pub(super) fn sign_extend(raw: u8, bits: usize) -> i8 {
        let shift = 8 - bits;
        ((raw << shift) as i8) >> shift
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The SSE2 and AVX2 tiers. Every function carries the safety
    //! contract "the caller verified the slice bounds the public
    //! wrapper asserts, and (for AVX2) the CPU supports the feature" —
    //! [`active_kernel`](super::active_kernel) guarantees the latter.
    //!
    //! All loads and stores are the unaligned variants: rows live at
    //! arbitrary offsets inside pages (int dtypes carry a 4-byte scale
    //! prefix, int4 rows can start mid-byte-pair, page starts are
    //! `Vec<u8>` allocations).

    use std::arch::x86_64::*;

    use super::scalar;

    /// `2⁻²⁴`, the value of one f16 subnormal mantissa unit. The
    /// product `f as f32 * 2⁻²⁴` is exact (power-of-two scaling of an
    /// integer ≤ 1023), reproducing the scalar normalization loop's
    /// bits without a loop.
    const F16_SUBNORMAL_UNIT: f32 = 1.0 / 16777216.0;

    // ------------------------------------------------------------------
    // f32 copy
    // ------------------------------------------------------------------

    // SAFETY: caller must have verified SSE2 and that `bytes` holds at
    // least `4 * out.len()` bytes (the public wrapper asserts it);
    // unaligned loads/stores stay inside those bounds.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn copy_f32_sse2(bytes: &[u8], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm_loadu_ps(bytes.as_ptr().add(i * 4) as *const f32);
            _mm_storeu_ps(out.as_mut_ptr().add(i), v);
            i += 4;
        }
        scalar::copy_f32(&bytes[i * 4..], &mut out[i..]);
    }

    // SAFETY: caller must have verified AVX2 and the same
    // `4 * out.len()` bound as the SSE2 tier.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn copy_f32_avx2(bytes: &[u8], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(bytes.as_ptr().add(i * 4) as *const f32);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
            i += 8;
        }
        scalar::copy_f32(&bytes[i * 4..], &mut out[i..]);
    }

    // ------------------------------------------------------------------
    // int8
    // ------------------------------------------------------------------

    /// Widens 8 `i8` codes (low half of `q`) to two `f32x4`, scales,
    /// and stores at `dst` — the shared SSE2 tail of the int8 and int4
    /// paths. Sign extension is done with compare-generated high
    /// bytes/words (SSE2 has no `cvtepi8_epi32`).
    // SAFETY: caller must have verified SSE2 and that `dst` is valid
    // for 8 f32 writes.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn widen8_scale_store_sse2(q: __m128i, vs: __m128, dst: *mut f32) {
        let zero = _mm_setzero_si128();
        let neg8 = _mm_cmpgt_epi8(zero, q);
        let w16 = _mm_unpacklo_epi8(q, neg8);
        let neg16 = _mm_cmpgt_epi16(zero, w16);
        let lo = _mm_cvtepi32_ps(_mm_unpacklo_epi16(w16, neg16));
        let hi = _mm_cvtepi32_ps(_mm_unpackhi_epi16(w16, neg16));
        _mm_storeu_ps(dst, _mm_mul_ps(lo, vs));
        _mm_storeu_ps(dst.add(4), _mm_mul_ps(hi, vs));
    }

    // SAFETY: caller must have verified SSE2 and that `bytes` holds at
    // least `out.len()` codes (the public wrapper asserts it); each
    // 8-lane step reads 8 bytes and writes 8 f32s inside those bounds.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dequant_i8_sse2(bytes: &[u8], scale: f32, out: &mut [f32]) {
        let n = out.len();
        let vs = _mm_set1_ps(scale);
        let mut i = 0usize;
        while i + 8 <= n {
            let q = _mm_loadl_epi64(bytes.as_ptr().add(i) as *const __m128i);
            widen8_scale_store_sse2(q, vs, out.as_mut_ptr().add(i));
            i += 8;
        }
        scalar::dequant_i8(&bytes[i..], scale, &mut out[i..]);
    }

    // SAFETY: caller must have verified AVX2 and the same
    // `out.len()`-codes bound as the SSE2 tier.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dequant_i8_avx2(bytes: &[u8], scale: f32, out: &mut [f32]) {
        let n = out.len();
        let vs = _mm256_set1_ps(scale);
        let mut i = 0usize;
        while i + 8 <= n {
            let q = _mm_loadl_epi64(bytes.as_ptr().add(i) as *const __m128i);
            let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(f, vs));
            i += 8;
        }
        scalar::dequant_i8(&bytes[i..], scale, &mut out[i..]);
    }

    // ------------------------------------------------------------------
    // int4
    // ------------------------------------------------------------------

    /// Unpacks 8 packed bytes (low half of `packed`) into 16 nibble
    /// codes in element order and sign-extends each 4-bit field via
    /// `(n ^ 8) - 8` byte arithmetic.
    // SAFETY: caller must have verified SSE2; pure register arithmetic,
    // no memory access.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn unpack16_i4_sse2(packed: __m128i) -> __m128i {
        let mask = _mm_set1_epi8(0x0F);
        let lo = _mm_and_si128(packed, mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(packed), mask);
        let inter = _mm_unpacklo_epi8(lo, hi);
        let bias = _mm_set1_epi8(8);
        _mm_sub_epi8(_mm_xor_si128(inter, bias), bias)
    }

    // SAFETY: caller must have verified SSE2 and that `bytes` holds at
    // least `out.len().div_ceil(2)` packed bytes (the public wrapper
    // asserts it); each 16-lane step reads 8 bytes and writes 16 f32s.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dequant_i4_sse2(bytes: &[u8], scale: f32, out: &mut [f32]) {
        let n = out.len();
        let vs = _mm_set1_ps(scale);
        let mut i = 0usize;
        while i + 16 <= n {
            let packed = _mm_loadl_epi64(bytes.as_ptr().add(i / 2) as *const __m128i);
            let signed = unpack16_i4_sse2(packed);
            widen8_scale_store_sse2(signed, vs, out.as_mut_ptr().add(i));
            widen8_scale_store_sse2(_mm_srli_si128::<8>(signed), vs, out.as_mut_ptr().add(i + 8));
            i += 16;
        }
        // i is a multiple of 16, so the tail starts on an even element
        // and the scalar nibble parity lines up.
        scalar::dequant_i4(&bytes[i / 2..], scale, &mut out[i..]);
    }

    // SAFETY: caller must have verified AVX2 and the same packed-bytes
    // bound as the SSE2 tier.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dequant_i4_avx2(bytes: &[u8], scale: f32, out: &mut [f32]) {
        let n = out.len();
        let vs = _mm256_set1_ps(scale);
        let mut i = 0usize;
        while i + 16 <= n {
            let packed = _mm_loadl_epi64(bytes.as_ptr().add(i / 2) as *const __m128i);
            let signed = unpack16_i4_sse2(packed);
            let f0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(signed));
            let f1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128::<8>(signed)));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(f0, vs));
            _mm256_storeu_ps(out.as_mut_ptr().add(i + 8), _mm256_mul_ps(f1, vs));
            i += 16;
        }
        scalar::dequant_i4(&bytes[i / 2..], scale, &mut out[i..]);
    }

    // ------------------------------------------------------------------
    // f16 decode (pure integer — never F16C, which quiets sNaNs)
    // ------------------------------------------------------------------

    /// SSE2 blend: `(a & !m) | (b & m)` (no `blendv` before SSE4.1).
    // SAFETY: caller must have verified SSE2; pure register arithmetic,
    // no memory access.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn blend_sse2(a: __m128i, b: __m128i, m: __m128i) -> __m128i {
        _mm_or_si128(_mm_andnot_si128(m, a), _mm_and_si128(m, b))
    }

    // SAFETY: caller must have verified SSE2 and that `bytes` holds at
    // least `2 * out.len()` bytes (the public wrapper asserts it);
    // each 4-lane step reads 8 bytes and writes 4 f32s inside bounds.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn decode_f16_sse2(bytes: &[u8], out: &mut [f32]) {
        let n = out.len();
        let zero = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 4 <= n {
            // 4 halves, zero-extended to u32 lanes.
            let h = _mm_loadl_epi64(bytes.as_ptr().add(i * 2) as *const __m128i);
            let w = _mm_unpacklo_epi16(h, zero);
            let sign = _mm_slli_epi32::<16>(_mm_and_si128(w, _mm_set1_epi32(0x8000)));
            let e = _mm_and_si128(_mm_srli_epi32::<10>(w), _mm_set1_epi32(0x1F));
            let f = _mm_and_si128(w, _mm_set1_epi32(0x3FF));
            let f13 = _mm_slli_epi32::<13>(f);
            // Normal: exp32 = e + (127 - 15); fraction widened 13 bits.
            let normal = _mm_add_epi32(
                _mm_slli_epi32::<23>(_mm_add_epi32(e, _mm_set1_epi32(112))),
                f13,
            );
            // Inf/NaN keep the (shifted) payload, preserving sNaN bits.
            let infnan = _mm_or_si128(_mm_set1_epi32(0x7F80_0000), f13);
            // Subnormal: value is exactly f · 2⁻²⁴.
            let sub = _mm_castps_si128(_mm_mul_ps(
                _mm_cvtepi32_ps(f),
                _mm_set1_ps(F16_SUBNORMAL_UNIT),
            ));
            let is_inf = _mm_cmpeq_epi32(e, _mm_set1_epi32(0x1F));
            let is_sub = _mm_cmpeq_epi32(e, zero);
            let bits = blend_sse2(blend_sse2(normal, infnan, is_inf), sub, is_sub);
            let bits = _mm_or_si128(bits, sign);
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_castsi128_ps(bits));
            i += 4;
        }
        scalar::decode_f16(&bytes[i * 2..], &mut out[i..]);
    }

    // SAFETY: caller must have verified AVX2 and the same
    // `2 * out.len()` bound; each 8-lane step reads 16 bytes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_f16_avx2(bytes: &[u8], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0usize;
        while i + 8 <= n {
            let h = _mm_loadu_si128(bytes.as_ptr().add(i * 2) as *const __m128i);
            let w = _mm256_cvtepu16_epi32(h);
            let sign = _mm256_slli_epi32::<16>(_mm256_and_si256(w, _mm256_set1_epi32(0x8000)));
            let e = _mm256_and_si256(_mm256_srli_epi32::<10>(w), _mm256_set1_epi32(0x1F));
            let f = _mm256_and_si256(w, _mm256_set1_epi32(0x3FF));
            let f13 = _mm256_slli_epi32::<13>(f);
            let normal = _mm256_add_epi32(
                _mm256_slli_epi32::<23>(_mm256_add_epi32(e, _mm256_set1_epi32(112))),
                f13,
            );
            let infnan = _mm256_or_si256(_mm256_set1_epi32(0x7F80_0000), f13);
            let sub = _mm256_castps_si256(_mm256_mul_ps(
                _mm256_cvtepi32_ps(f),
                _mm256_set1_ps(F16_SUBNORMAL_UNIT),
            ));
            let is_inf = _mm256_cmpeq_epi32(e, _mm256_set1_epi32(0x1F));
            let is_sub = _mm256_cmpeq_epi32(e, _mm256_setzero_si256());
            let bits = _mm256_blendv_epi8(_mm256_blendv_epi8(normal, infnan, is_inf), sub, is_sub);
            let bits = _mm256_or_si256(bits, sign);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_castsi256_ps(bits));
            i += 8;
        }
        scalar::decode_f16(&bytes[i * 2..], &mut out[i..]);
    }

    // ------------------------------------------------------------------
    // MemCom scale application
    // ------------------------------------------------------------------

    // SAFETY: caller must have verified SSE2; the loop stays inside
    // `out`'s own length.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn scale_mul_sse2(out: &mut [f32], v: f32) {
        let n = out.len();
        let vv = _mm_set1_ps(v);
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm_loadu_ps(out.as_ptr().add(i));
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_mul_ps(x, vv));
            i += 4;
        }
        scalar::scale_mul(&mut out[i..], v);
    }

    // SAFETY: caller must have verified AVX2; the loop stays inside
    // `out`'s own length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_mul_avx2(out: &mut [f32], v: f32) {
        let n = out.len();
        let vv = _mm256_set1_ps(v);
        let mut i = 0usize;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(out.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(x, vv));
            i += 8;
        }
        scalar::scale_mul(&mut out[i..], v);
    }

    // SAFETY: caller must have verified SSE2; the loop stays inside
    // `out`'s own length.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn scale_add_sse2(out: &mut [f32], v: f32, w: f32) {
        let n = out.len();
        let vv = _mm_set1_ps(v);
        let vw = _mm_set1_ps(w);
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm_loadu_ps(out.as_ptr().add(i));
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_add_ps(_mm_mul_ps(x, vv), vw));
            i += 4;
        }
        scalar::scale_add(&mut out[i..], v, w);
    }

    // SAFETY: caller must have verified AVX2; the loop stays inside
    // `out`'s own length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_add_avx2(out: &mut [f32], v: f32, w: f32) {
        let n = out.len();
        let vv = _mm256_set1_ps(v);
        let vw = _mm256_set1_ps(w);
        let mut i = 0usize;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(out.as_ptr().add(i));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_add_ps(_mm256_mul_ps(x, vv), vw),
            );
            i += 8;
        }
        scalar::scale_add(&mut out[i..], v, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Kernel::Scalar.as_str(), "scalar");
        assert_eq!(Kernel::Sse2.to_string(), "sse2");
        assert_eq!(Kernel::Avx2.to_string(), "avx2");
    }

    #[test]
    fn dispatch_matches_scalar_on_a_smoke_row() {
        // The exhaustive bit-identity property lives in the
        // `simd_equiv` proptest suite; this is a fast in-crate sanity
        // check that the dispatcher itself is wired to real kernels.
        let codes: Vec<u8> = (0..37u8).map(|i| i.wrapping_mul(97)).collect();
        let mut simd_out = vec![f32::NAN; 37];
        let mut scalar_out = vec![f32::NAN; 37];
        dequant_i8(&codes, 0.03125, &mut simd_out);
        scalar::dequant_i8(&codes, 0.03125, &mut scalar_out);
        assert_eq!(simd_out, scalar_out);

        let mut simd_out = vec![f32::NAN; 37];
        let mut scalar_out = vec![f32::NAN; 37];
        dequant_i4(&codes[..19], 0.25, &mut simd_out);
        scalar::dequant_i4(&codes[..19], 0.25, &mut scalar_out);
        assert_eq!(simd_out, scalar_out);
    }

    #[test]
    fn strided_copy_skips_row_gaps() {
        // Rows of 3 f32s stored with a 16-byte stride (4 bytes of
        // trailing junk per row).
        let mut src = Vec::new();
        for r in 0..5 {
            for c in 0..3 {
                src.extend_from_slice(&((r * 10 + c) as f32).to_le_bytes());
            }
            src.extend_from_slice(&0xDEADBEEFu32.to_le_bytes());
        }
        let mut out = vec![f32::NAN; 15];
        copy_f32_strided(&src, 16, 3, &mut out);
        let want: Vec<f32> = (0..5)
            .flat_map(|r| (0..3).map(move |c| (r * 10 + c) as f32))
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn scale_add_preserves_negative_zero_via_mul_only_kernel() {
        let mut buf = vec![-0.0f32; 9];
        scale_mul(&mut buf, 1.0);
        assert!(
            buf.iter().all(|x| x.is_sign_negative()),
            "-0.0 survived mul"
        );
        let mut buf = vec![1.5f32; 9];
        scale_add(&mut buf, 2.0, -1.0);
        assert!(buf.iter().all(|&x| x == 2.0));
    }
}
