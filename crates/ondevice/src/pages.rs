//! Structurally-shared, copy-on-write page storage for row tables.
//!
//! [`crate::MmapSim`] models a read-only mapped file as one owned byte
//! buffer — the right shape for a model that only ever changes by
//! *replacing the whole file*. A serving tier refreshing tables online
//! needs the opposite: row-level updates that do **not** rebuild (or
//! even copy) the parts of the table that did not change. This module
//! provides that storage primitive:
//!
//! * Rows of a fixed `stride` are packed into fixed-size **pages**, each
//!   its own `Arc<Vec<u8>>` allocation. Pages are row-aligned (a page
//!   holds a whole number of rows), so a row read is always one
//!   contiguous in-page slice.
//! * [`PagedTable::shared_clone`] is O(pages) pointer copies: the clone
//!   *shares* every page with the original. Writing a row through
//!   [`PagedTable::write_row`] copy-on-writes only the covering page
//!   (`Arc::make_mut`), leaving every untouched page physically shared —
//!   a delta touching 0.1% of rows copies ~0.1% of the bytes.
//! * The same lazy-residency accounting as [`crate::MmapSim`]: first
//!   touch of a page counts a fault and the page's cold bytes, so the
//!   resident set and the cold/warm byte split plug into the on-device
//!   cost model unchanged. Cloning carries the residency over (shared
//!   pages that were resident still are — they are the same memory),
//!   while the work counters start from zero for the new snapshot.
//!
//! Readers hold `&PagedTable` and writers `&mut PagedTable`, so Rust's
//! aliasing rules make torn reads impossible by construction: a snapshot
//! being prepared with `write_row` is not yet visible to any reader, and
//! once published (behind an `Arc` swap) it is never written again.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::{OnDeviceError, Result};

/// A fixed-stride row table stored as structurally-shared pages.
#[derive(Debug)]
pub struct PagedTable {
    /// Bytes per row.
    stride: usize,
    /// Total rows.
    rows: usize,
    /// Rows per full page (the last page may hold fewer).
    rows_per_page: usize,
    /// The pages; all but the last hold exactly `rows_per_page * stride`
    /// bytes.
    pages: Vec<Arc<Vec<u8>>>,
    /// Lazy-residency flag per page (first touch = fault).
    resident: Vec<AtomicBool>,
    resident_pages: AtomicUsize,
    faults: AtomicU64,
    total_read_bytes: AtomicU64,
    cold_read_bytes: AtomicU64,
    /// Bytes physically copied by copy-on-write row writes on *this*
    /// table (pages cloned off a shared `Arc` before mutation).
    cow_copied_bytes: u64,
    /// Pages cloned off a shared `Arc` before mutation (each page counts
    /// once per clone event, so repeated writes to an already-private
    /// page add nothing).
    cow_touched_pages: u64,
}

impl PagedTable {
    /// Packs `data` (contiguous rows of `stride` bytes each) into pages
    /// of at most `page_size` bytes, rounded down to a whole number of
    /// rows (at least one row per page, so a stride larger than
    /// `page_size` still works — each row is then its own page).
    ///
    /// # Panics
    ///
    /// Panics when `stride == 0`, `page_size == 0`, or `data.len()` is
    /// not a multiple of `stride` — all construction-time bugs.
    pub fn from_rows(data: &[u8], stride: usize, page_size: usize) -> Self {
        assert!(stride > 0, "row stride must be positive");
        assert!(page_size > 0, "page size must be positive");
        assert_eq!(data.len() % stride, 0, "data must be whole rows");
        let rows = data.len() / stride;
        let rows_per_page = (page_size / stride).max(1);
        let page_bytes = rows_per_page * stride;
        let pages: Vec<Arc<Vec<u8>>> = data
            .chunks(page_bytes)
            .map(|chunk| Arc::new(chunk.to_vec()))
            .collect();
        let n_pages = pages.len();
        PagedTable {
            stride,
            rows,
            rows_per_page,
            pages,
            resident: (0..n_pages).map(|_| AtomicBool::new(false)).collect(),
            resident_pages: AtomicUsize::new(0),
            faults: AtomicU64::new(0),
            total_read_bytes: AtomicU64::new(0),
            cold_read_bytes: AtomicU64::new(0),
            cow_copied_bytes: 0,
            cow_touched_pages: 0,
        }
    }

    /// An empty table (no rows, no pages) of the given geometry.
    pub fn empty(stride: usize, page_size: usize) -> Self {
        Self::from_rows(&[], stride, page_size)
    }

    /// Bytes per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total stored bytes across all pages.
    pub fn len(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Rows per full page.
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// Reads row `r` (one contiguous `stride`-byte slice), faulting the
    /// covering page in on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::OutOfBounds`] for `r >= rows()`.
    pub fn read_row(&self, r: usize) -> Result<&[u8]> {
        if r >= self.rows {
            return Err(OnDeviceError::OutOfBounds {
                offset: r * self.stride,
                len: self.stride,
                size: self.rows * self.stride,
            });
        }
        let page = r / self.rows_per_page;
        let offset = (r % self.rows_per_page) * self.stride;
        self.total_read_bytes
            .fetch_add(self.stride as u64, Ordering::Relaxed);
        // First touch of the page counts one fault pulling the whole
        // page from "storage". `swap` makes a racing first touch count
        // exactly once.
        if !self.resident[page].load(Ordering::Relaxed)
            && !self.resident[page].swap(true, Ordering::Relaxed)
        {
            self.faults.fetch_add(1, Ordering::Relaxed);
            self.resident_pages.fetch_add(1, Ordering::Relaxed);
            self.cold_read_bytes
                .fetch_add(self.pages[page].len() as u64, Ordering::Relaxed);
        }
        Ok(&self.pages[page][offset..offset + self.stride])
    }

    /// A snapshot clone sharing every page with `self` (O(pages) `Arc`
    /// bumps, no byte copies). Residency carries over — a shared page
    /// that is resident in the original is the same physical memory —
    /// while the fault/read-byte counters and the copy-on-write tally
    /// start from zero for the new snapshot.
    pub fn shared_clone(&self) -> Self {
        let resident: Vec<AtomicBool> = self
            .resident
            .iter()
            .map(|r| AtomicBool::new(r.load(Ordering::Relaxed)))
            .collect();
        let resident_count = resident
            .iter()
            .filter(|r| r.load(Ordering::Relaxed))
            .count();
        PagedTable {
            stride: self.stride,
            rows: self.rows,
            rows_per_page: self.rows_per_page,
            pages: self.pages.iter().map(Arc::clone).collect(),
            resident,
            resident_pages: AtomicUsize::new(resident_count),
            faults: AtomicU64::new(0),
            total_read_bytes: AtomicU64::new(0),
            cold_read_bytes: AtomicU64::new(0),
            cow_copied_bytes: 0,
            cow_touched_pages: 0,
        }
    }

    /// Overwrites row `r` with `bytes`, copy-on-writing the covering
    /// page: if the page is shared with another table (a prior
    /// snapshot), it is cloned first and only the clone is mutated —
    /// readers of the other table never observe the write. The page
    /// becomes resident (it was just written in memory; no fault is
    /// charged).
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::OutOfBounds`] for `r >= rows()`.
    ///
    /// # Panics
    ///
    /// Panics when `bytes.len() != stride()` — a caller sizing bug.
    pub fn write_row(&mut self, r: usize, bytes: &[u8]) -> Result<()> {
        assert_eq!(bytes.len(), self.stride, "row write must be stride bytes");
        if r >= self.rows {
            return Err(OnDeviceError::OutOfBounds {
                offset: r * self.stride,
                len: self.stride,
                size: self.rows * self.stride,
            });
        }
        let page = r / self.rows_per_page;
        let offset = (r % self.rows_per_page) * self.stride;
        if Arc::get_mut(&mut self.pages[page]).is_none() {
            self.cow_copied_bytes += self.pages[page].len() as u64;
            self.cow_touched_pages += 1;
        }
        Arc::make_mut(&mut self.pages[page])[offset..offset + self.stride].copy_from_slice(bytes);
        self.mark_resident(page);
        Ok(())
    }

    /// Appends `extra` rows, each initialized to `fill` (`stride`
    /// bytes): the growth path for vocabularies that gain entities
    /// between snapshots. The last partial page is copy-on-written and
    /// topped up; whole new pages are fresh allocations. Appended pages
    /// count as resident (they were just materialized in memory).
    ///
    /// # Panics
    ///
    /// Panics when `fill.len() != stride()`.
    pub fn extend_rows(&mut self, extra: usize, fill: &[u8]) {
        assert_eq!(fill.len(), self.stride, "fill row must be stride bytes");
        let page_bytes = self.rows_per_page * self.stride;
        let mut remaining = extra;
        // Top up the trailing partial page in place (CoW if shared).
        if let Some(last) = self.pages.last_mut() {
            if last.len() < page_bytes && remaining > 0 {
                let fit = ((page_bytes - last.len()) / self.stride).min(remaining);
                if fit > 0 {
                    if Arc::get_mut(last).is_none() {
                        self.cow_copied_bytes += last.len() as u64;
                        self.cow_touched_pages += 1;
                    }
                    let page = Arc::make_mut(last);
                    for _ in 0..fit {
                        page.extend_from_slice(fill);
                    }
                    remaining -= fit;
                    let idx = self.pages.len() - 1;
                    self.mark_resident(idx);
                }
            }
        }
        // Whole new pages for the rest.
        while remaining > 0 {
            let fit = remaining.min(self.rows_per_page);
            let mut page = Vec::with_capacity(fit * self.stride);
            for _ in 0..fit {
                page.extend_from_slice(fill);
            }
            self.pages.push(Arc::new(page));
            self.resident.push(AtomicBool::new(true));
            self.resident_pages.fetch_add(1, Ordering::Relaxed);
            remaining -= fit;
        }
        self.rows += extra;
    }

    fn mark_resident(&self, page: usize) {
        if !self.resident[page].swap(true, Ordering::Relaxed) {
            self.resident_pages.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bytes of pages physically shared (same allocation) between `self`
    /// and `other` — the structural-sharing diagnostic behind "a small
    /// delta copies a small fraction of the store".
    pub fn shared_bytes_with(&self, other: &PagedTable) -> usize {
        self.pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .map(|(a, _)| a.len())
            .sum()
    }

    /// Bytes physically copied by copy-on-write writes on this table
    /// since construction (or [`shared_clone`](Self::shared_clone)).
    pub fn cow_copied_bytes(&self) -> u64 {
        self.cow_copied_bytes
    }

    /// Pages cloned off a shared allocation by copy-on-write writes
    /// since construction (or [`shared_clone`](Self::shared_clone)) —
    /// the page-granular counterpart of
    /// [`cow_copied_bytes`](Self::cow_copied_bytes).
    pub fn cow_touched_pages(&self) -> u64 {
        self.cow_touched_pages
    }

    /// Number of resident (touched or written) pages.
    pub fn resident_page_count(&self) -> usize {
        self.resident_pages.load(Ordering::Relaxed)
    }

    /// Bytes of resident pages.
    pub fn resident_bytes(&self) -> usize {
        self.resident
            .iter()
            .zip(&self.pages)
            .filter(|(r, _)| r.load(Ordering::Relaxed))
            .map(|(_, p)| p.len())
            .sum()
    }

    /// Page faults so far (first touches by [`read_row`](Self::read_row)).
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Total bytes returned by row reads (hot + cold).
    pub fn total_read_bytes(&self) -> u64 {
        self.total_read_bytes.load(Ordering::Relaxed)
    }

    /// Bytes pulled from "storage" by first-touch faults.
    pub fn cold_read_bytes(&self) -> u64 {
        self.cold_read_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize, stride: usize, page_size: usize) -> PagedTable {
        let data: Vec<u8> = (0..rows * stride).map(|i| (i % 251) as u8).collect();
        PagedTable::from_rows(&data, stride, page_size)
    }

    #[test]
    fn rows_read_back_exactly() {
        let t = table(10, 3, 7); // 2 rows per page -> 5 pages
        assert_eq!(t.n_pages(), 5);
        assert_eq!(t.rows_per_page(), 2);
        assert_eq!(t.len(), 30);
        for r in 0..10 {
            let want: Vec<u8> = (r * 3..(r + 1) * 3).map(|i| (i % 251) as u8).collect();
            assert_eq!(t.read_row(r).unwrap(), want.as_slice(), "row {r}");
        }
        assert!(t.read_row(10).is_err());
    }

    #[test]
    fn stride_larger_than_page_size_still_works() {
        let t = table(4, 16, 8); // one row per page despite 8-byte pages
        assert_eq!(t.rows_per_page(), 1);
        assert_eq!(t.n_pages(), 4);
        assert_eq!(t.read_row(3).unwrap().len(), 16);
    }

    #[test]
    fn residency_and_fault_accounting() {
        let t = table(8, 4, 8); // 2 rows/page, 4 pages
        assert_eq!(t.resident_page_count(), 0);
        t.read_row(0).unwrap();
        t.read_row(1).unwrap(); // same page: warm
        assert_eq!(t.faults(), 1);
        assert_eq!(t.resident_page_count(), 1);
        assert_eq!(t.cold_read_bytes(), 8);
        assert_eq!(t.total_read_bytes(), 8);
        t.read_row(7).unwrap();
        assert_eq!(t.faults(), 2);
        assert_eq!(t.resident_bytes(), 16);
    }

    #[test]
    fn shared_clone_shares_pages_and_carries_residency() {
        let t = table(8, 4, 8);
        t.read_row(0).unwrap();
        let clone = t.shared_clone();
        assert_eq!(clone.shared_bytes_with(&t), t.len());
        assert_eq!(clone.resident_page_count(), 1, "residency carried");
        assert_eq!(clone.faults(), 0, "work counters start fresh");
        // A warm read on the clone is warm (no new fault).
        clone.read_row(1).unwrap();
        assert_eq!(clone.faults(), 0);
        assert_eq!(clone.cold_read_bytes(), 0);
    }

    #[test]
    fn write_row_copies_only_the_covering_page() {
        let t = table(8, 4, 8); // 4 pages of 8 bytes
        let mut clone = t.shared_clone();
        clone.write_row(2, &[9, 9, 9, 9]).unwrap();
        assert_eq!(clone.cow_copied_bytes(), 8, "one page copied");
        assert_eq!(clone.shared_bytes_with(&t), 24, "3 of 4 pages shared");
        // The original is untouched.
        assert_eq!(t.read_row(2).unwrap(), &[8, 9, 10, 11]);
        assert_eq!(clone.read_row(2).unwrap(), &[9, 9, 9, 9]);
        // Neighbour row on the same page survived the CoW.
        assert_eq!(clone.read_row(3).unwrap(), t.read_row(3).unwrap());
        // A second write to the already-copied page is in place.
        clone.write_row(3, &[7, 7, 7, 7]).unwrap();
        assert_eq!(clone.cow_copied_bytes(), 8, "no second copy");
        assert!(clone.write_row(8, &[0; 4]).is_err());
    }

    #[test]
    fn write_on_unshared_table_copies_nothing() {
        let mut t = table(4, 4, 8);
        t.write_row(0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(t.cow_copied_bytes(), 0);
        assert_eq!(t.read_row(0).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn extend_rows_grows_through_partial_and_new_pages() {
        let mut t = table(3, 4, 8); // 2 rows/page: pages of 2 + 1 rows
        t.extend_rows(4, &[5; 4]); // tops up page 1, adds 2 pages... (1+2, then rows 4..7)
        assert_eq!(t.rows(), 7);
        assert_eq!(t.read_row(2).unwrap(), &[8, 9, 10, 11], "old row intact");
        for r in 3..7 {
            assert_eq!(t.read_row(r).unwrap(), &[5; 4], "row {r}");
        }
        assert_eq!(t.n_pages(), 4);
        // Growth off a shared snapshot copies only the partial last page.
        let base = table(3, 4, 8);
        let mut grown = base.shared_clone();
        grown.extend_rows(1, &[6; 4]);
        assert_eq!(grown.cow_copied_bytes(), 4, "partial page CoW");
        assert_eq!(grown.shared_bytes_with(&base), 8, "full page still shared");
        assert_eq!(base.rows(), 3);
        assert_eq!(grown.read_row(3).unwrap(), &[6; 4]);
    }

    #[test]
    fn empty_table_grows_from_nothing() {
        let mut t = PagedTable::empty(4, 8);
        assert!(t.is_empty());
        assert_eq!(t.n_pages(), 0);
        t.extend_rows(3, &[1; 4]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.read_row(2).unwrap(), &[1; 4]);
        assert_eq!(t.resident_bytes(), 12);
    }

    #[test]
    fn concurrent_readers_fault_each_page_once() {
        let t = table(64, 8, 32); // 4 rows/page, 16 pages
        std::thread::scope(|s| {
            for k in 0..8 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..200 {
                        let r = (k * 13 + i * 7) % 64;
                        let bytes = t.read_row(r).expect("in bounds");
                        assert_eq!(bytes[0], ((r * 8) % 251) as u8);
                    }
                });
            }
        });
        assert_eq!(t.faults() as usize, t.resident_page_count());
        assert!(t.resident_page_count() <= 16);
        assert_eq!(t.total_read_bytes(), 8 * 200 * 8);
    }
}
