//! The on-device inference engines.
//!
//! [`InferenceSession`] executes a parsed [`OnDeviceModel`] over the
//! simulated mmap, counting the work that the compute-unit models convert
//! into Table-3 milliseconds and megabytes. Two embedding front ends:
//!
//! * **lookup** (full / naive-hash / MEmCom / truncate-rare): reads only
//!   the embedding rows the query touches — `O(L)` row faults;
//! * **one-hot** (Weinberger): materializes the `L × m` one-hot
//!   activation and performs the dense matmul against the entire kernel —
//!   the whole table faults in and `L·m·e` MACs are paid.
//!
//! The numerical result of both front ends is whatever their weights
//! dictate; what differs — and what §5.3 measures — is the cost profile.

use std::time::Instant;

use memcom_core::hashing::seeded_hash;
use memcom_core::one_hot_hash::ONE_HOT_SEED;

use crate::compute::{ComputeUnit, WorkCounts};
use crate::format::{EmbeddingKind, HeadOp, OnDeviceModel, TableMeta};
use crate::mmap_sim::MmapSim;
use crate::quant::decode_row_into;
use crate::{OnDeviceError, Result};

/// Work and memory observed during one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Counted work (flops, cold/warm bytes, activations).
    pub work: WorkCounts,
    /// Model file pages resident after the run.
    pub resident_model_bytes: usize,
    /// Host wall-clock time of the simulated run (for Criterion benches;
    /// not the Table-3 number).
    pub wall_nanos: u128,
}

impl RunStats {
    /// Simulated inference time on `unit`, in milliseconds.
    pub fn time_ms(&self, unit: ComputeUnit) -> f64 {
        unit.profile().time_ms(&self.work)
    }

    /// Simulated runtime memory footprint on `unit`, in bytes.
    pub fn footprint_bytes(&self, unit: ComputeUnit) -> usize {
        unit.profile()
            .footprint_bytes(self.resident_model_bytes, &self.work)
    }

    /// Footprint in megabytes (Table 3's unit).
    pub fn footprint_mb(&self, unit: ComputeUnit) -> f64 {
        self.footprint_bytes(unit) as f64 / 1_048_576.0
    }
}

/// Reusable buffers for the head-op executor
/// ([`InferenceSession::forward_head`]).
///
/// A scratch owns every intermediate the head needs — the ping/pong
/// activation pair, one dequantized kernel row, and the four batch-norm
/// parameter rows — so a warmed scratch executes the whole head without
/// allocating. `memcom-serve`'s scoring backends keep one per worker to
/// extend the O(1)-allocations-per-call certification to the forward
/// pass.
#[derive(Debug, Default)]
pub struct HeadScratch {
    /// Current activation (the executor's "ping" buffer).
    act: Vec<f32>,
    /// Next activation (the "pong" buffer ops write into before a swap).
    next: Vec<f32>,
    /// One dequantized dense-kernel row.
    row: Vec<f32>,
    /// Batch-norm gamma/beta/mean/var rows.
    bn: [Vec<f32>; 4],
}

impl HeadScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and sizes the input activation to `rows * cols` zeros,
    /// returning the slice for the caller to fill with the `[rows, cols]`
    /// embedding activation before calling
    /// [`InferenceSession::forward_head`].
    pub fn input(&mut self, rows: usize, cols: usize) -> &mut [f32] {
        self.act.clear();
        self.act.resize(rows * cols, 0.0);
        &mut self.act
    }
}

/// A loaded model ready for repeated inference over simulated mmap.
///
/// `run` takes `&self` and the underlying [`MmapSim`] is thread-safe, so
/// one session can serve concurrent inferences from many worker threads
/// (the `memcom-serve` crate builds its per-shard stores on the same
/// thread-safe `MmapSim` machinery). Results are always correct under
/// concurrency; per-run byte *attribution* in [`RunStats`] is exact only
/// for non-overlapping runs — overlapping runs may observe each other's
/// page faults in their cold/warm deltas, and a concurrent `reset`
/// clamps the deltas to zero rather than corrupting them.
#[derive(Debug)]
pub struct InferenceSession {
    meta: OnDeviceModel,
    mmap: MmapSim,
}

impl InferenceSession {
    /// Loads a parsed model into a session (the model's bytes become the
    /// mapped file).
    pub fn new(mut model: OnDeviceModel) -> Self {
        let bytes = std::mem::take(&mut model.bytes);
        InferenceSession {
            meta: model,
            mmap: MmapSim::new(bytes),
        }
    }

    /// Loads with a custom page size (ablation: footprint sensitivity).
    pub fn with_page_size(mut model: OnDeviceModel, page_size: usize) -> Self {
        let bytes = std::mem::take(&mut model.bytes);
        InferenceSession {
            meta: model,
            mmap: MmapSim::with_page_size(bytes, page_size),
        }
    }

    /// The parsed manifest.
    pub fn model(&self) -> &OnDeviceModel {
        &self.meta
    }

    /// The underlying simulated mapping.
    pub fn mmap(&self) -> &MmapSim {
        &self.mmap
    }

    /// Evicts all pages (cold-start state).
    pub fn reset(&self) {
        self.mmap.reset();
    }

    /// Runs one batch-1 inference over `ids` (must be `input_len` long).
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::BadInput`] on length/vocabulary mismatch
    /// and propagates mapping errors.
    pub fn run(&self, ids: &[usize]) -> Result<(Vec<f32>, RunStats)> {
        let start = Instant::now();
        if ids.len() != self.meta.input_len {
            return Err(OnDeviceError::BadInput {
                context: format!("expected {} ids, got {}", self.meta.input_len, ids.len()),
            });
        }
        if let Some(&bad) = ids.iter().find(|&&i| i >= self.meta.vocab) {
            return Err(OnDeviceError::BadInput {
                context: format!("id {bad} out of vocabulary {}", self.meta.vocab),
            });
        }
        let cold_before = self.mmap.cold_read_bytes();
        let total_before = self.mmap.total_read_bytes();
        let mut work = WorkCounts::default();

        // Embedding front end → [L, e] activation, then the shared head
        // executor (the exact arithmetic `forward_head` documents).
        let l = self.meta.input_len;
        let e = self.meta.emb_dim;
        let mut scratch = HeadScratch::new();
        self.embed_into(ids, scratch.input(l, e), &mut work)?;
        let mut logits = Vec::new();
        self.forward_head(l, &mut scratch, &mut logits, &mut work)?;

        // Saturating: a concurrent `reset` can rewind the shared counters
        // below the snapshot taken at the top of this run; clamping to 0
        // keeps the stats sane instead of wrapping.
        work.cold_bytes = self.mmap.cold_read_bytes().saturating_sub(cold_before);
        work.warm_bytes = self
            .mmap
            .total_read_bytes()
            .saturating_sub(total_before)
            .saturating_sub(work.cold_bytes);
        let stats = RunStats {
            work,
            resident_model_bytes: self.mmap.resident_bytes(),
            wall_nanos: start.elapsed().as_nanos(),
        };
        Ok((logits, stats))
    }

    /// Output length of the head — the `K` in "N ids in, K scores out"
    /// (the last dense layer's width, or `emb_dim` for a head with no
    /// dense layer).
    pub fn head_out_len(&self) -> usize {
        self.meta
            .head_ops
            .iter()
            .rev()
            .find_map(|op| match op {
                HeadOp::Dense { out_dim, .. } => Some(*out_dim),
                _ => None,
            })
            .unwrap_or(self.meta.emb_dim)
    }

    /// Executes the head ops over the `[rows, emb_dim]` activation the
    /// caller placed in `scratch` (via [`HeadScratch::input`]), writing
    /// the final activation into `out`.
    ///
    /// This is the one head executor in the crate: [`run`](Self::run)
    /// calls it after the embedding front end, and `memcom-serve`'s
    /// scoring backends call it after gathering embedding rows from a
    /// `ShardedStore` — both paths therefore produce bit-identical
    /// results for the same input activation. A warmed `scratch` (and an
    /// `out` with capacity) makes the call allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::BadInput`] when the scratch activation is
    /// not `rows * emb_dim` long (or `rows == 0`),
    /// [`OnDeviceError::BadFormat`] when an op's dimensions do not match
    /// the running activation, and propagates mapping errors from
    /// parameter-table reads.
    pub fn forward_head(
        &self,
        rows: usize,
        scratch: &mut HeadScratch,
        out: &mut Vec<f32>,
        work: &mut WorkCounts,
    ) -> Result<()> {
        let e = self.meta.emb_dim;
        if rows == 0 || scratch.act.len() != rows * e {
            return Err(OnDeviceError::BadInput {
                context: format!(
                    "head input must be rows({rows}) x emb_dim({e}), got {} values",
                    scratch.act.len()
                ),
            });
        }
        let mut act_dims = (rows, e);
        track_activation(work, scratch.act.len());

        for op in &self.meta.head_ops {
            let act = &mut scratch.act;
            match op {
                HeadOp::AveragePool => {
                    let (rows, cols) = act_dims;
                    let pooled = &mut scratch.next;
                    pooled.clear();
                    pooled.resize(cols, 0.0);
                    for r in 0..rows {
                        for c in 0..cols {
                            pooled[c] += act[r * cols + c];
                        }
                    }
                    let inv = 1.0 / rows as f32;
                    for p in pooled.iter_mut() {
                        *p *= inv;
                    }
                    work.flops += (rows * cols + cols) as u64;
                    std::mem::swap(&mut scratch.act, &mut scratch.next);
                    act_dims = (1, cols);
                    track_activation(work, scratch.act.len());
                }
                HeadOp::Relu => {
                    for x in act.iter_mut() {
                        *x = x.max(0.0);
                    }
                    work.flops += act.len() as u64;
                }
                HeadOp::BatchNorm { dim, tables, eps } => {
                    if act.len() != *dim {
                        return Err(OnDeviceError::BadFormat {
                            context: format!("batch norm dim {dim} vs activation {}", act.len()),
                        });
                    }
                    for (buf, table) in scratch.bn.iter_mut().zip(tables.iter()) {
                        buf.clear();
                        buf.resize(table.cols, 0.0);
                        self.read_row_into(table, 0, buf)?;
                    }
                    let [gamma, beta, mean, var] = &scratch.bn;
                    for i in 0..*dim {
                        act[i] = gamma[i] * (act[i] - mean[i]) / (var[i] + eps).sqrt() + beta[i];
                    }
                    work.flops += 5 * *dim as u64;
                }
                HeadOp::Dense {
                    in_dim,
                    out_dim,
                    weight,
                    bias,
                } => {
                    if act.len() != *in_dim {
                        return Err(OnDeviceError::BadFormat {
                            context: format!("dense in {in_dim} vs activation {}", act.len()),
                        });
                    }
                    let acc = &mut scratch.next;
                    acc.clear();
                    acc.resize(bias.cols, 0.0);
                    self.read_row_into(bias, 0, acc)?;
                    debug_assert_eq!(acc.len(), *out_dim);
                    // One scratch row reused for every kernel row: the
                    // inner loop dequantizes in place instead of
                    // allocating a Vec per input element.
                    let w_row = &mut scratch.row;
                    w_row.clear();
                    w_row.resize(*out_dim, 0.0);
                    for (i, &xi) in act.iter().enumerate() {
                        self.read_row_into(weight, i, w_row)?;
                        for (o, &w) in acc.iter_mut().zip(w_row.iter()) {
                            *o += xi * w;
                        }
                    }
                    work.flops += (2 * in_dim * out_dim) as u64;
                    std::mem::swap(&mut scratch.act, &mut scratch.next);
                    act_dims = (1, *out_dim);
                    track_activation(work, scratch.act.len());
                }
            }
        }
        let _ = act_dims;
        out.clear();
        out.extend_from_slice(&scratch.act);
        Ok(())
    }

    /// Runs the embedding front end, filling the caller's `[L, e]`
    /// activation slice (`act.len() == ids.len() * emb_dim`, zeroed).
    fn embed_into(&self, ids: &[usize], act: &mut [f32], work: &mut WorkCounts) -> Result<()> {
        let l = ids.len();
        let e = self.meta.emb_dim;
        let m = self.meta.hash_size;
        debug_assert_eq!(act.len(), l * e);
        match self.meta.embedding_kind {
            EmbeddingKind::Full | EmbeddingKind::NaiveHash | EmbeddingKind::TruncateRare => {
                let table = &self.meta.emb_tables[0];
                for (pos, &id) in ids.iter().enumerate() {
                    let row = match self.meta.embedding_kind {
                        EmbeddingKind::Full => id,
                        EmbeddingKind::NaiveHash => id % m,
                        EmbeddingKind::TruncateRare => id.min(table.rows - 1),
                        _ => unreachable!(),
                    };
                    self.read_row_into(table, row, &mut act[pos * e..(pos + 1) * e])?;
                }
                Ok(())
            }
            EmbeddingKind::MemCom | EmbeddingKind::MemComBias => {
                let shared = &self.meta.emb_tables[0];
                let mult = &self.meta.emb_tables[1];
                let bias = self.meta.emb_tables.get(2);
                let mut scalar = [0f32; 1];
                for (pos, &id) in ids.iter().enumerate() {
                    let slot = &mut act[pos * e..(pos + 1) * e];
                    self.read_row_into(shared, id % m, slot)?;
                    self.read_row_into(mult, id, &mut scalar)?;
                    let v = scalar[0];
                    match bias {
                        Some(b) => {
                            self.read_row_into(b, id, &mut scalar)?;
                            let w = scalar[0];
                            crate::simd::scale_add(slot, v, w);
                            work.flops += 2 * e as u64;
                        }
                        None => {
                            crate::simd::scale_mul(slot, v);
                            work.flops += e as u64;
                        }
                    }
                }
                Ok(())
            }
            EmbeddingKind::OneHotHash => {
                let kernel = &self.meta.emb_tables[0];
                // Materialize the L × m one-hot activation — the §5.3
                // memory hog ("relies on the one-hot encoded
                // representation").
                let mut one_hot = vec![0f32; l * m];
                for (pos, &id) in ids.iter().enumerate() {
                    one_hot[pos * m + seeded_hash(id, m, ONE_HOT_SEED)] = 1.0;
                }
                track_activation(work, one_hot.len());
                // Dense [L, m] × [m, e] matmul: every kernel row is read
                // and L·m·e MACs are charged. The inner arithmetic skips
                // zero coefficients (the result is identical) but the
                // counted cost is the dense cost the delegate pays.
                let mut k_row = vec![0f32; e];
                for r in 0..m {
                    self.read_row_into(kernel, r, &mut k_row)?;
                    for pos in 0..l {
                        let coeff = one_hot[pos * m + r];
                        if coeff != 0.0 {
                            let out = &mut act[pos * e..(pos + 1) * e];
                            for (o, &kv) in out.iter_mut().zip(&k_row) {
                                *o += coeff * kv;
                            }
                        }
                    }
                }
                work.flops += (2 * l * m * e) as u64;
                Ok(())
            }
        }
    }

    /// Reads and dequantizes one table row through the mmap, straight
    /// into `out` (`table.cols` values) — no intermediate allocation.
    fn read_row_into(&self, table: &TableMeta, r: usize, out: &mut [f32]) -> Result<()> {
        let (offset, len) = table.row_range(r);
        let bytes = self.mmap.read(offset, len)?;
        decode_row_into(bytes, table.dtype, table.scale, out);
        Ok(())
    }
}

fn track_activation(work: &mut WorkCounts, elems: usize) {
    // Peak activation model: the largest single buffer alive (sequential
    // executors free the previous op's input once consumed).
    work.activation_bytes = work.activation_bytes.max((elems * 4) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::OnDeviceModel;
    use crate::quant::Dtype;
    use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig, MethodSpec, OneHotHashEncoder};
    use memcom_nn::{AveragePool1d, BatchNorm1d, Dense, Relu, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn head(e: usize, classes: usize) -> Sequential {
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = Sequential::new();
        h.push(AveragePool1d::new());
        h.push(Relu::new());
        h.push(BatchNorm1d::new(e));
        h.push(Dense::new(e, classes, &mut rng));
        h
    }

    fn session_for(
        emb: &dyn EmbeddingCompressor,
        input_len: usize,
        classes: usize,
    ) -> InferenceSession {
        let bytes =
            OnDeviceModel::serialize(emb, &head(emb.output_dim(), classes), input_len, Dtype::F32)
                .unwrap();
        InferenceSession::new(OnDeviceModel::parse(bytes).unwrap())
    }

    /// Reference: run the same embedding + head in the training stack.
    fn reference_logits(
        emb: &mut dyn EmbeddingCompressor,
        input_len: usize,
        classes: usize,
        ids: &[usize],
    ) -> Vec<f32> {
        use memcom_nn::{Layer, Mode};
        let mut h = head(emb.output_dim(), classes);
        let flat = emb.lookup(ids).unwrap();
        let seq = flat.reshape(&[1, input_len, emb.output_dim()]).unwrap();
        h.forward(&seq, Mode::Eval).unwrap().into_vec()
    }

    #[test]
    fn memcom_session_matches_training_stack() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = MemCom::new(MemComConfig::with_bias(200, 8, 20), &mut rng).unwrap();
        let ids: Vec<usize> = (0..6).map(|i| i * 31 % 200).collect();
        let want = reference_logits(&mut emb, 6, 4, &ids);
        let session = session_for(&emb, 6, 4);
        let (got, stats) = session.run(&ids).unwrap();
        assert_eq!(got.len(), 4);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert!(stats.work.flops > 0);
        assert!(stats.resident_model_bytes > 0);
    }

    #[test]
    fn onehot_session_matches_training_stack() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = OneHotHashEncoder::new(200, 8, 16, &mut rng).unwrap();
        let ids: Vec<usize> = (0..6).map(|i| i * 17 % 200).collect();
        let want = reference_logits(&mut emb, 6, 4, &ids);
        let session = session_for(&emb, 6, 4);
        let (got, _) = session.run(&ids).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn lookup_touches_less_than_onehot() {
        // Same vocab/e/m: MEmCom's resident bytes ≪ Weinberger's.
        let mut rng = StdRng::seed_from_u64(2);
        let vocab = 5_000;
        let m = 1_000;
        let e = 32;
        let memcom = MemCom::new(MemComConfig::new(vocab, e, m), &mut rng).unwrap();
        let onehot = OneHotHashEncoder::new(vocab, e, m, &mut rng).unwrap();
        let ids: Vec<usize> = (0..16).map(|i| i * 13 % vocab).collect();

        let s_memcom = session_for(&memcom, 16, 4);
        let (_, stats_memcom) = s_memcom.run(&ids).unwrap();
        let s_onehot = session_for(&onehot, 16, 4);
        let (_, stats_onehot) = s_onehot.run(&ids).unwrap();

        // The one-hot engine reads the entire kernel (m·e·4 ≈ 128 KB);
        // MEmCom touches only queried rows. Hmm the multiplier table rows
        // are scattered but tiny.
        assert!(
            stats_onehot.resident_model_bytes > stats_memcom.resident_model_bytes,
            "onehot {} vs memcom {}",
            stats_onehot.resident_model_bytes,
            stats_memcom.resident_model_bytes
        );
        // And its activations dwarf the lookup path (L·m one-hot).
        assert!(stats_onehot.work.activation_bytes >= (16 * m * 4) as u64);
        assert!(stats_onehot.work.activation_bytes > 8 * stats_memcom.work.activation_bytes);
        // Dense matmul flops dominate.
        assert!(stats_onehot.work.flops > 50 * stats_memcom.work.flops);
        // Which shows up as simulated time on every unit.
        for unit in ComputeUnit::all() {
            assert!(
                stats_onehot.time_ms(unit) > stats_memcom.time_ms(unit),
                "{unit:?}"
            );
        }
    }

    #[test]
    fn warm_runs_have_no_cold_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let emb = MemCom::new(MemComConfig::new(100, 8, 10), &mut rng).unwrap();
        let session = session_for(&emb, 4, 3);
        let ids = [1usize, 2, 3, 4];
        let (_, first) = session.run(&ids).unwrap();
        assert!(first.work.cold_bytes > 0);
        let (_, second) = session.run(&ids).unwrap();
        assert_eq!(second.work.cold_bytes, 0, "second run must be fully warm");
        assert!(second.work.warm_bytes > 0);
        assert!(second.time_ms(ComputeUnit::CoreMlAll) < first.time_ms(ComputeUnit::CoreMlAll));
        session.reset();
        let (_, third) = session.run(&ids).unwrap();
        assert!(third.work.cold_bytes > 0, "reset must re-cool the pages");
    }

    #[test]
    fn session_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InferenceSession>();
    }

    #[test]
    fn concurrent_runs_match_serial_results() {
        let mut rng = StdRng::seed_from_u64(7);
        let emb = MemCom::new(MemComConfig::with_bias(500, 16, 50), &mut rng).unwrap();
        let session = session_for(&emb, 8, 5);

        // Serial reference: one logit vector per distinct query.
        let queries: Vec<Vec<usize>> = (0..16)
            .map(|q| (0..8).map(|i| (q * 61 + i * 13) % 500).collect())
            .collect();
        let expected: Vec<Vec<f32>> = queries
            .iter()
            .map(|ids| session.run(ids).unwrap().0)
            .collect();

        // 8 worker threads replay the same queries against the shared
        // session; every result must be bit-identical to the serial run.
        std::thread::scope(|s| {
            for t in 0..8 {
                let (session, queries, expected) = (&session, &queries, &expected);
                s.spawn(move || {
                    for (q, ids) in queries.iter().enumerate().skip(t % 4) {
                        let (logits, stats) = session.run(ids).unwrap();
                        assert_eq!(logits, expected[q], "thread {t} query {q}");
                        assert!(stats.work.flops > 0);
                    }
                });
            }
        });
    }

    #[test]
    fn input_validation() {
        let mut rng = StdRng::seed_from_u64(4);
        let emb = MemCom::new(MemComConfig::new(100, 8, 10), &mut rng).unwrap();
        let session = session_for(&emb, 4, 3);
        assert!(session.run(&[1, 2, 3]).is_err()); // wrong length
        assert!(session.run(&[1, 2, 3, 100]).is_err()); // out of vocab
    }

    #[test]
    fn all_serializable_kinds_execute() {
        let mut rng = StdRng::seed_from_u64(5);
        let specs = [
            MethodSpec::Uncompressed,
            MethodSpec::NaiveHash { hash_size: 10 },
            MethodSpec::MemCom {
                hash_size: 10,
                bias: false,
            },
            MethodSpec::MemCom {
                hash_size: 10,
                bias: true,
            },
            MethodSpec::TruncateRare { keep: 20 },
            MethodSpec::WeinbergerOneHot { hash_size: 10 },
        ];
        for spec in specs {
            let emb = spec.build(100, 8, &mut rng).unwrap();
            let session = session_for(emb.as_ref(), 4, 3);
            let (logits, stats) = session.run(&[5, 50, 99, 0]).unwrap();
            assert_eq!(logits.len(), 3, "{spec:?}");
            assert!(logits.iter().all(|x| x.is_finite()), "{spec:?}");
            assert!(stats.footprint_mb(ComputeUnit::TfLiteCpu) > 0.0);
        }
    }

    #[test]
    fn quantized_model_runs_close_to_f32() {
        let mut rng = StdRng::seed_from_u64(6);
        let emb = MemCom::new(MemComConfig::new(100, 8, 10), &mut rng).unwrap();
        let h = head(8, 3);
        let ids = [1usize, 2, 3, 4];
        let f32_bytes = OnDeviceModel::serialize(&emb, &h, 4, Dtype::F32).unwrap();
        let f16_bytes = OnDeviceModel::serialize(&emb, &h, 4, Dtype::F16).unwrap();
        let s32 = InferenceSession::new(OnDeviceModel::parse(f32_bytes).unwrap());
        let s16 = InferenceSession::new(OnDeviceModel::parse(f16_bytes).unwrap());
        let (a, _) = s32.run(&ids).unwrap();
        let (b, _) = s16.run(&ids).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }
}
