//! Simulated memory-mapped model files.
//!
//! §5.3: "on-device frameworks such as CoreML and TensorFlow-Lite use
//! memory-mapped IO (via mmap) rather than loading the entire embedding
//! table into the memory". This module models that behaviour at page
//! granularity: reads fault pages in lazily, and the **resident set** —
//! the pages an inference actually touched — is the memory footprint that
//! Table 3 contrasts between MEmCom's row lookups and Weinberger's
//! whole-kernel matmul.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::{OnDeviceError, Result};

/// Default page size (16 KiB — the page size of Apple Silicon / modern
/// Android kernels).
pub const DEFAULT_PAGE_SIZE: usize = 16 * 1024;

/// A byte buffer behaving like a lazily-paged, memory-mapped file.
///
/// Safe to share across threads (`&MmapSim` from many readers): warm reads
/// take only a shared lock on the residency set plus relaxed counter
/// bumps, so the steady-state serving path never contends on an exclusive
/// lock. Cold reads (first touch of a page) upgrade to the write lock and
/// re-check residency under it, so a racing first touch is counted as
/// exactly one fault.
#[derive(Debug)]
pub struct MmapSim {
    data: Vec<u8>,
    page_size: usize,
    resident: RwLock<HashSet<usize>>,
    faults: AtomicU64,
    total_read_bytes: AtomicU64,
    cold_read_bytes: AtomicU64,
}

impl MmapSim {
    /// Maps `data` with the default page size.
    pub fn new(data: Vec<u8>) -> Self {
        Self::with_page_size(data, DEFAULT_PAGE_SIZE)
    }

    /// Maps `data` with a custom page size.
    ///
    /// # Panics
    ///
    /// Panics when `page_size == 0` — a configuration bug.
    pub fn with_page_size(data: Vec<u8>, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        MmapSim {
            data,
            page_size,
            resident: RwLock::new(HashSet::new()),
            faults: AtomicU64::new(0),
            total_read_bytes: AtomicU64::new(0),
            cold_read_bytes: AtomicU64::new(0),
        }
    }

    /// File size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Reads `len` bytes at `offset`, faulting in the covering pages.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::OutOfBounds`] for reads past the end.
    pub fn read(&self, offset: usize, len: usize) -> Result<&[u8]> {
        let end = offset.checked_add(len).ok_or(OnDeviceError::OutOfBounds {
            offset,
            len,
            size: self.data.len(),
        })?;
        if end > self.data.len() {
            return Err(OnDeviceError::OutOfBounds {
                offset,
                len,
                size: self.data.len(),
            });
        }
        if len > 0 {
            let first = offset / self.page_size;
            let last = (end - 1) / self.page_size;
            self.total_read_bytes
                .fetch_add(len as u64, Ordering::Relaxed);
            // Fast path: every covered page already resident — shared lock
            // only, no writer contention between concurrent warm readers.
            let all_warm = {
                let resident = self.resident.read();
                (first..=last).all(|page| resident.contains(&page))
            };
            if !all_warm {
                let mut resident = self.resident.write();
                for page in first..=last {
                    // Re-checked under the write lock: a racing reader may
                    // have faulted the page between our two lock scopes.
                    if resident.insert(page) {
                        self.faults.fetch_add(1, Ordering::Relaxed);
                        // A fault pulls the whole page from storage.
                        let page_start = page * self.page_size;
                        let page_len = self.page_size.min(self.data.len() - page_start);
                        self.cold_read_bytes
                            .fetch_add(page_len as u64, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(&self.data[offset..end])
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.read().len()
    }

    /// Bytes of resident pages (the file's contribution to the runtime
    /// memory footprint).
    pub fn resident_bytes(&self) -> usize {
        self.resident
            .read()
            .iter()
            .map(|&p| {
                self.page_size
                    .min(self.data.len().saturating_sub(p * self.page_size))
            })
            .sum()
    }

    /// Page faults so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Total bytes returned by reads (hot + cold).
    pub fn total_read_bytes(&self) -> u64 {
        self.total_read_bytes.load(Ordering::Relaxed)
    }

    /// Bytes pulled from "storage" by first-touch faults.
    pub fn cold_read_bytes(&self) -> u64 {
        self.cold_read_bytes.load(Ordering::Relaxed)
    }

    /// Evicts every page and clears counters (models a fresh process, the
    /// state Table 3's averaged runs begin from). Counters are snapped to
    /// zero while the eviction holds the write lock; callers should
    /// quiesce readers if they need the zeroing to be atomic with respect
    /// to in-flight reads.
    pub fn reset(&self) {
        let mut resident = self.resident.write();
        resident.clear();
        self.faults.store(0, Ordering::Relaxed);
        self.total_read_bytes.store(0, Ordering::Relaxed);
        self.cold_read_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mapped(n: usize, page: usize) -> MmapSim {
        MmapSim::with_page_size((0..n).map(|i| (i % 251) as u8).collect(), page)
    }

    #[test]
    fn read_returns_correct_bytes() {
        let m = mapped(100, 16);
        assert_eq!(m.read(0, 4).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(m.read(98, 2).unwrap(), &[98, 99]);
        assert_eq!(m.read(0, 0).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let m = mapped(100, 16);
        assert!(m.read(99, 2).is_err());
        assert!(m.read(100, 1).is_err());
        assert!(m.read(usize::MAX, 2).is_err());
        assert!(m.read(100, 0).is_ok()); // zero-length read at the end is fine
    }

    #[test]
    fn residency_tracks_touched_pages_only() {
        let m = mapped(160, 16); // 10 pages
        m.read(0, 1).unwrap();
        assert_eq!(m.resident_pages(), 1);
        m.read(15, 2).unwrap(); // spans pages 0 and 1
        assert_eq!(m.resident_pages(), 2);
        m.read(0, 8).unwrap(); // warm
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.faults(), 2);
        assert_eq!(m.resident_bytes(), 32);
    }

    #[test]
    fn cold_vs_total_read_accounting() {
        let m = mapped(64, 16);
        m.read(0, 4).unwrap();
        assert_eq!(m.cold_read_bytes(), 16); // one full page faulted
        assert_eq!(m.total_read_bytes(), 4);
        m.read(0, 4).unwrap(); // warm read
        assert_eq!(m.cold_read_bytes(), 16);
        assert_eq!(m.total_read_bytes(), 8);
    }

    #[test]
    fn last_partial_page_counted_correctly() {
        let m = mapped(20, 16); // pages: 16 + 4 bytes
        m.read(16, 4).unwrap();
        assert_eq!(m.resident_bytes(), 4);
        m.read(0, 20).unwrap();
        assert_eq!(m.resident_bytes(), 20);
    }

    #[test]
    fn reset_evicts_everything() {
        let m = mapped(64, 16);
        m.read(0, 64).unwrap();
        assert!(m.resident_pages() > 0);
        m.reset();
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.faults(), 0);
        assert_eq!(m.total_read_bytes(), 0);
    }

    #[test]
    fn full_scan_touches_whole_file() {
        let m = mapped(1000, 64);
        m.read(0, 1000).unwrap();
        assert_eq!(m.resident_bytes(), 1000);
        assert_eq!(m.resident_pages(), 16); // ceil(1000/64)
    }

    #[test]
    fn shared_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmapSim>();
    }

    #[test]
    fn concurrent_readers_account_exactly() {
        let n = 64 * 32; // 32 pages of 64 bytes
        let m = mapped(n, 64);
        let threads = 8;
        let reads_per_thread = 400;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = &m;
                s.spawn(move || {
                    for i in 0..reads_per_thread {
                        let off = (t * 37 + i * 131) % (n - 8);
                        let bytes = m.read(off, 8).expect("in-bounds read");
                        // Returned bytes must be correct regardless of
                        // which thread faulted the page in.
                        for (k, &b) in bytes.iter().enumerate() {
                            assert_eq!(b, ((off + k) % 251) as u8);
                        }
                    }
                });
            }
        });
        // Each resident page faulted exactly once despite racing first
        // touches, and the totals are exact (no lost updates).
        assert_eq!(m.faults() as usize, m.resident_pages());
        assert!(m.resident_pages() <= 32);
        assert_eq!(
            m.total_read_bytes(),
            (threads * reads_per_thread * 8) as u64
        );
        assert!(m.cold_read_bytes() <= n as u64);
    }

    proptest! {
        #[test]
        fn prop_residency_monotone(
            reads in proptest::collection::vec((0usize..256, 0usize..64), 1..30)
        ) {
            let m = mapped(256, 32);
            let mut last = 0usize;
            for (off, len) in reads {
                let len = len.min(256 - off.min(256));
                if m.read(off.min(255), len.min(256 - off.min(255))).is_ok() {
                    let now = m.resident_pages();
                    prop_assert!(now >= last);
                    last = now;
                }
            }
            // Resident never exceeds the file's page count.
            prop_assert!(m.resident_pages() <= 8);
        }

        #[test]
        fn prop_cold_bytes_bounded_by_file(reads in proptest::collection::vec(0usize..200, 1..50)) {
            let m = mapped(200, 16);
            for off in reads {
                let _ = m.read(off, (200 - off).min(10));
            }
            prop_assert!(m.cold_read_bytes() <= 200);
        }
    }
}
