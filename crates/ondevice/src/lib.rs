//! On-device inference simulator.
//!
//! Stands in for the paper's §5.3 hardware setup (CoreML on an iPhone 12
//! Pro, TensorFlow Lite on a Pixel 2) with a faithful *architectural*
//! model of what those runtimes do with an embedding model:
//!
//! * [`format`](mod@format) — a flat binary model format (the "on-disk model" whose
//!   size the paper's compression ratios govern).
//! * [`mmap_sim`] — a page-granular lazy-residency simulation of
//!   memory-mapped model loading ("CoreML and TF-Lite implement the lookup
//!   operator in the embedding layer using mmap", §5.3).
//! * [`pages`] — structurally-shared, copy-on-write page storage for
//!   row tables: the serving tier's substrate for row-level delta
//!   updates (a snapshot clone shares every untouched page).
//! * [`engine`] — two inference engines over the mapped bytes: the
//!   **lookup engine** (MEmCom-style: touches only the embedding rows a
//!   query needs) and the **one-hot engine** (Weinberger-style: builds the
//!   `L × m` one-hot activation and multiplies against the whole kernel).
//! * [`compute`] — per-compute-unit latency models (CoreML `all` /
//!   `cpuOnly` / `cpuAndGPU`, TF-Lite CPU) translating counted work into
//!   Table-3-style milliseconds.
//! * [`quant`] — post-training linear quantization (FP16/INT8/INT4/INT2)
//!   for the Figure-4 precision sweep.
//! * [`simd`] — runtime-dispatched SSE2/AVX2 dequantization kernels
//!   (bit-identical to the scalar fallback) underneath the decode hot
//!   path.
//!
//! Absolute milliseconds are simulator units calibrated to Table 3's
//! magnitudes; the reproduced *shape* is what matters — who wins on which
//! compute unit and by roughly what factor, and the memory-footprint gap
//! between lookup- and one-hot-based embedding front ends.

pub mod compute;
pub mod engine;
pub mod error;
pub mod format;
pub mod mmap_sim;
pub mod pages;
pub mod quant;
pub mod simd;

pub use compute::ComputeUnit;
pub use engine::{HeadScratch, InferenceSession, RunStats};
pub use error::OnDeviceError;
pub use format::{OnDeviceModel, MAGIC};
pub use mmap_sim::MmapSim;
pub use pages::PagedTable;
pub use quant::{decode_row_into, dequant_error_bound, quantize_row, Dtype, QuantizedTable};
pub use simd::{active_kernel, Kernel};

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, OnDeviceError>;
