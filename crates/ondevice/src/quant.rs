//! Post-training linear quantization (§A.2 / Figure 4).
//!
//! The paper quantizes trained MEmCom models with CoreML's `linear` mode
//! and sweeps 32 → 16 → 8 → 4 → 2 bits. This module implements the same
//! scheme: symmetric per-tensor linear quantization for integer widths and
//! IEEE-754 half precision for 16 bits.

use memcom_tensor::Tensor;

use crate::{OnDeviceError, Result};

/// Storage type of a serialized table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 32-bit IEEE float (no quantization).
    F32,
    /// 16-bit IEEE half.
    F16,
    /// Symmetric linear 8-bit integer.
    Int8,
    /// Symmetric linear 4-bit integer (two values per byte).
    Int4,
    /// Symmetric linear 2-bit integer (four values per byte).
    Int2,
}

impl Dtype {
    /// Bits per stored element.
    pub fn bits(self) -> usize {
        match self {
            Dtype::F32 => 32,
            Dtype::F16 => 16,
            Dtype::Int8 => 8,
            Dtype::Int4 => 4,
            Dtype::Int2 => 2,
        }
    }

    /// Bytes needed to store `n` elements (rows are byte-padded
    /// independently, so use [`Dtype::row_bytes`] for tables).
    pub fn payload_bytes(self, n: usize) -> usize {
        (n * self.bits()).div_ceil(8)
    }

    /// Bytes per row of `cols` elements (each row starts byte-aligned).
    pub fn row_bytes(self, cols: usize) -> usize {
        (cols * self.bits()).div_ceil(8)
    }

    /// Bytes of per-row metadata when rows are stored with an
    /// *independent* per-row scale (the serving store's layout): integer
    /// dtypes prepend their `f32` scale, float dtypes need none.
    pub fn scale_prefix_bytes(self) -> usize {
        match self {
            Dtype::F32 | Dtype::F16 => 0,
            Dtype::Int8 | Dtype::Int4 | Dtype::Int2 => 4,
        }
    }

    /// Bytes per stored row in the per-row-scale layout
    /// ([`Dtype::scale_prefix_bytes`] + [`Dtype::row_bytes`]).
    pub fn stored_row_bytes(self, cols: usize) -> usize {
        self.scale_prefix_bytes() + self.row_bytes(cols)
    }

    /// Wire tag for the format.
    pub fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::F16 => 1,
            Dtype::Int8 => 2,
            Dtype::Int4 => 3,
            Dtype::Int2 => 4,
        }
    }

    /// Parses a wire tag.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::BadFormat`] for unknown tags.
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => Dtype::F32,
            1 => Dtype::F16,
            2 => Dtype::Int8,
            3 => Dtype::Int4,
            4 => Dtype::Int2,
            _ => {
                return Err(OnDeviceError::BadFormat {
                    context: format!("unknown dtype tag {tag}"),
                })
            }
        })
    }

    /// The dtype the paper's Figure 4 uses for a given bit width.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::Unsupported`] for widths outside
    /// {32, 16, 8, 4, 2}.
    pub fn for_bits(bits: usize) -> Result<Self> {
        Ok(match bits {
            32 => Dtype::F32,
            16 => Dtype::F16,
            8 => Dtype::Int8,
            4 => Dtype::Int4,
            2 => Dtype::Int2,
            _ => {
                return Err(OnDeviceError::Unsupported {
                    context: format!("no {bits}-bit quantization mode"),
                })
            }
        })
    }
}

/// Converts an `f32` to IEEE-754 half-precision bits (round-to-nearest).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf / NaN.
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal half.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_frac = (frac >> 13) as u16;
        // Round to nearest even on the dropped bits.
        let round = (frac >> 12) & 1;
        let mut out = sign | half_exp | half_frac;
        if round == 1 {
            out = out.wrapping_add(1);
        }
        return out;
    }
    if unbiased >= -24 {
        // Subnormal half: frac_half = mantissa24 · 2^(unbiased+1).
        let shift = (-unbiased - 1) as u32; // 14..=23
        let mantissa24 = frac | 0x0080_0000;
        let mantissa = mantissa24 >> shift;
        let round = (mantissa24 >> (shift - 1)) & 1;
        let mut out = sign | mantissa as u16;
        if round == 1 {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign // underflow → signed zero
}

/// Converts IEEE-754 half-precision bits back to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let frac = (h & 0x03FF) as u32;
    let bits = match (exp, frac) {
        (0, 0) => sign,
        (0, f) => {
            // Subnormal: value = f · 2⁻²⁴. Normalize f into 1.m form; k
            // left-shifts put the implicit bit at 0x400, giving
            // value = (1 + m/1024) · 2^(−14−k), i.e. exp32 = 113 − k.
            let mut k = 0i32;
            let mut f = f;
            while f & 0x0400 == 0 {
                f <<= 1;
                k += 1;
            }
            let exp32 = (113 - k) as u32;
            sign | (exp32 << 23) | ((f & 0x03FF) << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, f) => sign | 0x7F80_0000 | (f << 13),
        (e, f) => sign | ((e + 127 - 15) << 23) | (f << 13),
    };
    f32::from_bits(bits)
}

/// A quantized table: payload bytes plus the affine metadata needed to
/// reconstruct approximate `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTable {
    /// Storage type.
    pub dtype: Dtype,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Linear scale (integer dtypes; 1.0 for float dtypes).
    pub scale: f32,
    /// Largest *finite* absolute source value (drives the f16 error
    /// bound; non-finite inputs are sanitized out of lossy encodings).
    pub max_abs: f32,
    /// Packed payload (rows are byte-aligned).
    pub data: Vec<u8>,
}

impl QuantizedTable {
    /// Quantizes a rank-2 tensor (rank-1 tensors are treated as one row).
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::Unsupported`] for tensors of rank > 2.
    pub fn quantize(t: &Tensor, dtype: Dtype) -> Result<Self> {
        let (rows, cols) = match t.shape().rank() {
            1 => (1, t.len()),
            2 => (t.shape().dims()[0], t.shape().dims()[1]),
            r => {
                return Err(OnDeviceError::Unsupported {
                    context: format!("cannot serialize rank-{r} tensor"),
                })
            }
        };
        let src = t.as_slice();
        let row_bytes = dtype.row_bytes(cols);
        let mut data = vec![0u8; rows * row_bytes];
        let (max_abs, any_non_finite) = finite_max_abs(src);
        let scale = linear_scale(max_abs, dtype);
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let out = &mut data[r * row_bytes..(r + 1) * row_bytes];
            if any_non_finite && dtype != Dtype::F32 {
                encode_row_map(row, dtype, scale, out, |x| sanitize_non_finite(x, max_abs));
            } else {
                encode_row(row, dtype, scale, out);
            }
        }
        Ok(QuantizedTable {
            dtype,
            rows,
            cols,
            scale,
            max_abs,
            data,
        })
    }

    /// Reconstructs the full tensor.
    ///
    /// # Errors
    ///
    /// Never fails for tables built by [`QuantizedTable::quantize`].
    pub fn dequantize(&self) -> Result<Tensor> {
        let mut out = vec![0f32; self.rows * self.cols];
        for r in 0..self.rows {
            self.dequantize_row_into(r, &mut out[r * self.cols..(r + 1) * self.cols]);
        }
        Ok(Tensor::from_vec(out, &[self.rows, self.cols])?)
    }

    /// Reconstructs one row, allocating a fresh `Vec` (convenience over
    /// [`dequantize_row_into`](Self::dequantize_row_into)).
    pub fn dequantize_row(&self, r: usize) -> Vec<f32> {
        let mut out = vec![0f32; self.cols];
        self.dequantize_row_into(r, &mut out);
        out
    }

    /// Reconstructs one row directly into `out` — the zero-allocation
    /// hot path: touches only that row's bytes and writes into the
    /// caller's buffer.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.cols` or `r >= self.rows` — both
    /// are caller sizing bugs, not data-dependent conditions.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "row buffer must hold cols values");
        let row_bytes = self.dtype.row_bytes(self.cols);
        decode_row_into(
            &self.data[r * row_bytes..(r + 1) * row_bytes],
            self.dtype,
            self.scale,
            out,
        );
    }

    /// Worst-case absolute reconstruction error: half a quantization step
    /// for integer dtypes, a half-ULP-at-`max_abs` bound for f16 (its
    /// error is relative, so the table's largest magnitude dominates),
    /// and 0 for f32.
    pub fn max_abs_error_bound(&self) -> f32 {
        dequant_error_bound(self.dtype, self.scale, self.max_abs)
    }
}

/// The symmetric linear quantization scale for a source whose *finite*
/// magnitudes are bounded by `max_abs` (callers sanitize via
/// [`finite_max_abs`]): one step maps `max_abs` onto the dtype's
/// positive integer range. `1.0` for float dtypes, and for an all-zero
/// source (which encodes and decodes exactly at any scale).
///
/// The step is clamped to at least `f32::MIN_POSITIVE`: a subnormal
/// `max_abs` otherwise lets the division underflow to a zero (or
/// subnormal) scale, turning `x / scale` in [`quantize_value`] into
/// inf/NaN and certifying a zero-width error bound for a nonzero row.
/// With the clamp such rows encode to all-zero codes whose
/// `scale * 0.5` bound honestly covers them.
fn linear_scale(max_abs: f32, dtype: Dtype) -> f32 {
    match dtype {
        Dtype::F32 | Dtype::F16 => 1.0,
        Dtype::Int8 | Dtype::Int4 | Dtype::Int2 => {
            debug_assert!(max_abs.is_finite(), "sanitize max_abs before scaling");
            let qmax = ((1usize << (dtype.bits() - 1)) - 1) as f32;
            if max_abs == 0.0 {
                1.0
            } else {
                (max_abs / qmax).max(f32::MIN_POSITIVE)
            }
        }
    }
}

/// Largest *finite* magnitude in `row`, plus whether any non-finite
/// value (NaN or ±inf) was present. This is the `max_abs` every scale
/// and error-bound computation uses: an infinity must widen the scale
/// to infinity (encoding every finite value to 0 with a lying bound)
/// exactly never, and NaN must not poison the `f32::max` fold.
fn finite_max_abs(row: &[f32]) -> (f32, bool) {
    let mut max_abs = 0f32;
    let mut any_non_finite = false;
    for &x in row {
        if x.is_finite() {
            max_abs = max_abs.max(x.abs());
        } else {
            any_non_finite = true;
        }
    }
    (max_abs, any_non_finite)
}

/// The value a lossy encoding stores in place of `x`: NaN becomes 0
/// (it carries no magnitude to preserve), ±inf clamps to the row's
/// largest finite magnitude with the infinity's sign. Finite values
/// pass through untouched. The certified row bound then covers the
/// error relative to this sanitized row.
fn sanitize_non_finite(x: f32, max_abs: f32) -> f32 {
    if x.is_finite() {
        x
    } else if x.is_nan() {
        0.0
    } else {
        max_abs.copysign(x)
    }
}

/// Worst-case absolute reconstruction error of one value quantized to
/// `dtype` at linear `scale`, where `max_abs` bounds the source
/// magnitudes. Integer dtypes err by at most half a step; f16 rounds to
/// 11 significand bits (relative error `2⁻¹¹`, bounded absolutely at
/// `max_abs`, plus the `2⁻²⁴` subnormal granularity); f32 is exact —
/// and so is an all-zero source at any dtype, which certifies 0 rather
/// than half of the fallback scale (a zeroed padding row must not poison
/// a whole store's bound).
///
/// Values beyond f16's finite range (±65504) saturate to infinity and
/// are *not* covered by the f16 bound.
pub fn dequant_error_bound(dtype: Dtype, scale: f32, max_abs: f32) -> f32 {
    if max_abs == 0.0 {
        return 0.0;
    }
    match dtype {
        Dtype::F32 => 0.0,
        Dtype::F16 => max_abs * (1.0 / 1024.0) + 6e-8,
        Dtype::Int8 | Dtype::Int4 | Dtype::Int2 => scale * 0.5,
    }
}

/// Encodes one row in the serving store's **stored-row** layout — the
/// optional inline per-row `f32` scale ([`Dtype::scale_prefix_bytes`])
/// followed by the packed payload — appending to `out` and reusing
/// `payload_scratch` ([`Dtype::row_bytes`]`(row.len())` bytes) across
/// calls. Returns the row's worst-case absolute dequantization error.
///
/// This is the page-granular re-encode primitive: store builds encode
/// whole tables through it, and row-level delta updates re-encode just
/// the changed rows into copy-on-written pages
/// ([`crate::pages::PagedTable`]).
///
/// # Panics
///
/// Panics on a mis-sized `payload_scratch` — a caller sizing bug.
pub fn encode_stored_row(
    row: &[f32],
    dtype: Dtype,
    payload_scratch: &mut [u8],
    out: &mut Vec<u8>,
) -> f32 {
    let scale = quantize_row(row, dtype, payload_scratch);
    if dtype.scale_prefix_bytes() > 0 {
        out.extend_from_slice(&scale.to_le_bytes());
    }
    out.extend_from_slice(payload_scratch);
    let (max_abs, _) = finite_max_abs(row);
    dequant_error_bound(dtype, scale, max_abs)
}

/// Decodes one stored row (optional inline scale + packed payload, the
/// layout written by [`encode_stored_row`]) straight into `out`.
///
/// # Panics
///
/// Panics when `bytes` is shorter than
/// [`Dtype::stored_row_bytes`]`(out.len())`.
pub fn decode_stored_row(bytes: &[u8], dtype: Dtype, out: &mut [f32]) {
    let prefix = dtype.scale_prefix_bytes();
    let scale = if prefix == 0 {
        1.0
    } else {
        f32::from_le_bytes(bytes[..prefix].try_into().expect("4-byte scale prefix"))
    };
    decode_row_into(&bytes[prefix..], dtype, scale, out);
}

/// The stored-row encoding of an all-zero row of `cols` values — what a
/// removed (tombstoned) or not-yet-upserted grown slot holds. Decodes
/// exactly to zeros at every dtype, with a certified error of 0.
pub fn stored_zero_row(dtype: Dtype, cols: usize) -> Vec<u8> {
    let mut payload = vec![0u8; dtype.row_bytes(cols)];
    let mut out = Vec::with_capacity(dtype.stored_row_bytes(cols));
    let bound = encode_stored_row(&vec![0f32; cols], dtype, &mut payload, &mut out);
    debug_assert_eq!(bound, 0.0);
    out
}

/// Quantizes one row independently of its table — the per-row-scale
/// layout the serving store uses — returning the row's linear scale
/// (`1.0` for float dtypes). `out` must be exactly
/// [`Dtype::row_bytes`]`(row.len())` long; it is zeroed before the
/// packed encodings OR into place.
///
/// Non-finite inputs are sanitized before any lossy encoding (NaN → 0,
/// ±inf → the row's largest finite magnitude, signed): the returned
/// scale is always finite, and [`dequant_error_bound`] at the row's
/// finite `max_abs` certifies the error *relative to the sanitized
/// row*. The F32 dtype stays a verbatim bit-exact passthrough.
///
/// # Panics
///
/// Panics on a mis-sized `out` — a caller sizing bug.
pub fn quantize_row(row: &[f32], dtype: Dtype, out: &mut [u8]) -> f32 {
    assert_eq!(
        out.len(),
        dtype.row_bytes(row.len()),
        "payload buffer must hold row_bytes"
    );
    out.fill(0);
    let (max_abs, any_non_finite) = finite_max_abs(row);
    let scale = linear_scale(max_abs, dtype);
    if any_non_finite && dtype != Dtype::F32 {
        encode_row_map(row, dtype, scale, out, |x| sanitize_non_finite(x, max_abs));
    } else {
        encode_row(row, dtype, scale, out);
    }
    scale
}

/// Encodes one row of f32s into the packed representation. `out` must be
/// [`Dtype::row_bytes`]`(row.len())` long and zeroed (the sub-byte
/// encodings OR into place — [`quantize_row`] is the public entry point
/// and zeroes the buffer itself).
pub(crate) fn encode_row(row: &[f32], dtype: Dtype, scale: f32, out: &mut [u8]) {
    encode_row_map(row, dtype, scale, out, |x| x);
}

/// [`encode_row`] with a value transform applied ahead of every lossy
/// encoding — the sanitization hook for non-finite inputs. The F32 arm
/// deliberately bypasses `map`: exact storage needs no sanitizing, and
/// F32 stores must stay bit-identical to their source.
fn encode_row_map(row: &[f32], dtype: Dtype, scale: f32, out: &mut [u8], map: impl Fn(f32) -> f32) {
    match dtype {
        Dtype::F32 => {
            for (i, &x) in row.iter().enumerate() {
                out[i * 4..(i + 1) * 4].copy_from_slice(&x.to_le_bytes());
            }
        }
        Dtype::F16 => {
            for (i, &x) in row.iter().enumerate() {
                out[i * 2..(i + 1) * 2].copy_from_slice(&f32_to_f16_bits(map(x)).to_le_bytes());
            }
        }
        Dtype::Int8 => {
            for (i, &x) in row.iter().enumerate() {
                out[i] = quantize_value(map(x), scale, 8) as u8;
            }
        }
        Dtype::Int4 => {
            for (i, &x) in row.iter().enumerate() {
                let q = (quantize_value(map(x), scale, 4) as u8) & 0x0F;
                if i % 2 == 0 {
                    out[i / 2] |= q;
                } else {
                    out[i / 2] |= q << 4;
                }
            }
        }
        Dtype::Int2 => {
            for (i, &x) in row.iter().enumerate() {
                let q = (quantize_value(map(x), scale, 2) as u8) & 0x03;
                out[i / 4] |= q << ((i % 4) * 2);
            }
        }
    }
}

/// Decodes one packed row back to f32s, allocating the result
/// (convenience over [`decode_row_into`]).
pub fn decode_row(bytes: &[u8], dtype: Dtype, scale: f32, cols: usize) -> Vec<f32> {
    let mut out = vec![0f32; cols];
    decode_row_into(bytes, dtype, scale, &mut out);
    out
}

/// Decodes one packed row directly into `out` (`out.len()` columns) —
/// the zero-allocation primitive every dequantizing hot path shares: the
/// on-device engine decodes activations in place and the serving store
/// decodes misses straight into the caller's batch slab.
///
/// Dispatches to the runtime-selected [`crate::simd`] kernel; the
/// scalar fallback produces bit-identical output (see that module's
/// exactness contract).
///
/// # Panics
///
/// Panics when `bytes` is shorter than
/// [`Dtype::row_bytes`]`(out.len())`.
pub fn decode_row_into(bytes: &[u8], dtype: Dtype, scale: f32, out: &mut [f32]) {
    match dtype {
        Dtype::F32 => crate::simd::copy_f32(bytes, out),
        Dtype::F16 => crate::simd::decode_f16(bytes, out),
        Dtype::Int8 => crate::simd::dequant_i8(bytes, scale, out),
        Dtype::Int4 => crate::simd::dequant_i4(bytes, scale, out),
        Dtype::Int2 => crate::simd::dequant_i2(bytes, scale, out),
    }
}

fn quantize_value(x: f32, scale: f32, bits: usize) -> i8 {
    let qmax = ((1usize << (bits - 1)) - 1) as f32;
    (x / scale).round().clamp(-qmax, qmax) as i8
}

/// Quantize-then-dequantize a tensor in place — the "simulated
/// quantization" used to measure Figure 4's accuracy impact without going
/// through a file.
///
/// # Errors
///
/// Propagates [`QuantizedTable::quantize`] failures.
pub fn simulate_quantization(t: &mut Tensor, dtype: Dtype) -> Result<()> {
    if dtype == Dtype::F32 {
        return Ok(());
    }
    let dims = t.shape().dims().to_vec();
    let q = QuantizedTable::quantize(t, dtype)?;
    let deq = q.dequantize()?;
    *t = deq.reshape(&dims)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f16_round_trip_exact_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), x, "{x}");
        }
    }

    #[test]
    fn f16_special_values() {
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow saturates to infinity.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e20)), f32::INFINITY);
        // Tiny values flush toward zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-20)), 0.0);
    }

    #[test]
    fn f16_subnormals_survive() {
        let x = 6e-5f32; // near the subnormal boundary (min normal ≈ 6.1e-5)
        let rt = f16_bits_to_f32(f32_to_f16_bits(x));
        assert!((rt - x).abs() / x < 0.01, "{x} -> {rt}");
        let sub = 1e-6f32; // deep subnormal
        let rt = f16_bits_to_f32(f32_to_f16_bits(sub));
        assert!((rt - sub).abs() < 1e-7, "{sub} -> {rt}");
    }

    #[test]
    fn dtype_sizing() {
        assert_eq!(Dtype::F32.row_bytes(3), 12);
        assert_eq!(Dtype::F16.row_bytes(3), 6);
        assert_eq!(Dtype::Int8.row_bytes(3), 3);
        assert_eq!(Dtype::Int4.row_bytes(3), 2);
        assert_eq!(Dtype::Int2.row_bytes(3), 1);
        assert_eq!(Dtype::Int2.row_bytes(5), 2);
        for d in [
            Dtype::F32,
            Dtype::F16,
            Dtype::Int8,
            Dtype::Int4,
            Dtype::Int2,
        ] {
            assert_eq!(Dtype::from_tag(d.tag()).unwrap(), d);
        }
        assert!(Dtype::from_tag(9).is_err());
        assert_eq!(Dtype::for_bits(8).unwrap(), Dtype::Int8);
        assert!(Dtype::for_bits(3).is_err());
    }

    #[test]
    fn int8_round_trip_error_bounded() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 10.0).collect();
        let t = Tensor::from_vec(data.clone(), &[10, 10]).unwrap();
        let q = QuantizedTable::quantize(&t, Dtype::Int8).unwrap();
        let deq = q.dequantize().unwrap();
        let bound = q.max_abs_error_bound() + 1e-6;
        for (a, b) in data.iter().zip(deq.as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn lower_precision_is_lossier() {
        let data: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.37).sin()).collect();
        let t = Tensor::from_vec(data.clone(), &[16, 16]).unwrap();
        let err = |d: Dtype| {
            let q = QuantizedTable::quantize(&t, d).unwrap();
            let deq = q.dequantize().unwrap();
            data.iter()
                .zip(deq.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0f32, f32::max)
        };
        let (e16, e8, e4, e2) = (
            err(Dtype::F16),
            err(Dtype::Int8),
            err(Dtype::Int4),
            err(Dtype::Int2),
        );
        assert!(e16 < e8, "f16 {e16} vs int8 {e8}");
        assert!(e8 < e4, "int8 {e8} vs int4 {e4}");
        assert!(e4 < e2, "int4 {e4} vs int2 {e2}");
    }

    #[test]
    fn row_access_matches_full_dequantize() {
        let data: Vec<f32> = (0..60).map(|i| (i as f32) * 0.1 - 3.0).collect();
        let t = Tensor::from_vec(data, &[12, 5]).unwrap();
        for dtype in [
            Dtype::F32,
            Dtype::F16,
            Dtype::Int8,
            Dtype::Int4,
            Dtype::Int2,
        ] {
            let q = QuantizedTable::quantize(&t, dtype).unwrap();
            let full = q.dequantize().unwrap();
            let mut scratch = vec![0f32; 5];
            for r in 0..12 {
                assert_eq!(
                    q.dequantize_row(r),
                    full.row(r).unwrap(),
                    "{dtype:?} row {r}"
                );
                // The zero-copy variant writes the identical values.
                scratch.fill(f32::NAN);
                q.dequantize_row_into(r, &mut scratch);
                assert_eq!(scratch, q.dequantize_row(r), "{dtype:?} row {r} into");
            }
        }
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros(&[4, 4]);
        for dtype in [Dtype::Int8, Dtype::Int4, Dtype::Int2] {
            let q = QuantizedTable::quantize(&t, dtype).unwrap();
            assert!(q.dequantize().unwrap().as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn zero_rows_certify_zero_error() {
        // A zeroed row (padding_idx rows in trained tables) round-trips
        // exactly at any dtype, so its bound is 0 — it must not poison a
        // store-wide max with the fallback scale's half-step.
        for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4, Dtype::Int2] {
            let mut payload = vec![0xFFu8; dtype.row_bytes(6)];
            let scale = quantize_row(&[0.0; 6], dtype, &mut payload);
            assert_eq!(dequant_error_bound(dtype, scale, 0.0), 0.0, "{dtype:?}");
            let mut out = vec![f32::NAN; 6];
            decode_row_into(&payload, dtype, scale, &mut out);
            assert_eq!(out, vec![0.0; 6], "{dtype:?} (stale buffer bits cleared)");
        }
        // The table-level bound degenerates to 0 for an all-zero tensor
        // too, and a mixed table still reports a positive bound.
        let zeros = QuantizedTable::quantize(&Tensor::zeros(&[2, 3]), Dtype::Int8).unwrap();
        assert_eq!(zeros.max_abs_error_bound(), 0.0);
        let mixed = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, -2.0, 0.5], &[2, 3]).unwrap();
        let q = QuantizedTable::quantize(&mixed, Dtype::Int8).unwrap();
        assert!(q.max_abs_error_bound() > 0.0);
        assert!(q.max_abs_error_bound() < 0.01);
    }

    #[test]
    fn non_finite_rows_sanitize_with_honest_bound() {
        // Regression: ±inf used to drive max_abs (and thus the scale) to
        // infinity, encoding every finite value to 0 while the advertised
        // bound claimed near-exactness; NaN slid through the f32::max
        // fold unnoticed.
        let row = [1.0f32, f32::INFINITY, f32::NEG_INFINITY, f32::NAN, -2.5];
        for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4, Dtype::Int2] {
            let mut payload = vec![0u8; dtype.row_bytes(row.len())];
            let scale = quantize_row(&row, dtype, &mut payload);
            assert!(scale.is_finite(), "{dtype:?} scale {scale}");
            let mut out = vec![f32::NAN; row.len()];
            decode_row_into(&payload, dtype, scale, &mut out);
            assert!(
                out.iter().all(|x| x.is_finite()),
                "{dtype:?} decoded {out:?}"
            );
            let bound = dequant_error_bound(dtype, scale, 2.5) * (1.0 + 1e-5) + 1e-6;
            // Finite values decode within the certified bound…
            assert!((out[0] - 1.0).abs() <= bound, "{dtype:?} {out:?}");
            assert!((out[4] + 2.5).abs() <= bound, "{dtype:?} {out:?}");
            // …NaN lands at 0, ±inf at the signed finite row max.
            assert!(out[3].abs() <= bound, "{dtype:?} NaN → {}", out[3]);
            assert!((out[1] - 2.5).abs() <= bound, "{dtype:?} +inf → {}", out[1]);
            assert!((out[2] + 2.5).abs() <= bound, "{dtype:?} -inf → {}", out[2]);
        }
        // F32 stays a verbatim bit-exact passthrough — no sanitizing.
        let mut payload = vec![0u8; Dtype::F32.row_bytes(row.len())];
        quantize_row(&row, Dtype::F32, &mut payload);
        let mut out = vec![0f32; row.len()];
        decode_row_into(&payload, Dtype::F32, 1.0, &mut out);
        assert_eq!(out[1], f32::INFINITY);
        assert_eq!(out[2], f32::NEG_INFINITY);
        assert!(out[3].is_nan());
    }

    #[test]
    fn subnormal_max_abs_clamps_scale_and_stays_honest() {
        // Regression: a subnormal max_abs underflowed linear_scale to 0,
        // making x / scale inf (→ saturated codes) while the certified
        // bound collapsed to scale · 0.5 = 0 — a lie. The clamp keeps
        // the scale a normal float whose half-step covers the row.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        let row = [tiny, -tiny, 0.0];
        for dtype in [Dtype::Int8, Dtype::Int4, Dtype::Int2] {
            let mut payload = vec![0u8; dtype.row_bytes(row.len())];
            let scale = quantize_row(&row, dtype, &mut payload);
            assert!(
                scale.is_finite() && scale >= f32::MIN_POSITIVE,
                "{dtype:?} scale {scale:e}"
            );
            let mut out = vec![f32::NAN; row.len()];
            decode_row_into(&payload, dtype, scale, &mut out);
            let bound = dequant_error_bound(dtype, scale, tiny);
            assert!(bound > 0.0, "{dtype:?}");
            for (a, b) in row.iter().zip(&out) {
                assert!((a - b).abs() <= bound, "{dtype:?} {a:e} vs {b:e}");
            }
        }
    }

    #[test]
    fn rank1_treated_as_single_row() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let q = QuantizedTable::quantize(&t, Dtype::F32).unwrap();
        assert_eq!((q.rows, q.cols), (1, 3));
        assert!(QuantizedTable::quantize(&Tensor::zeros(&[2, 2, 2]), Dtype::F32).is_err());
    }

    #[test]
    fn simulate_quantization_in_place() {
        let mut t = Tensor::from_vec(vec![0.11, -0.52, 0.93, 0.04], &[2, 2]).unwrap();
        let orig = t.clone();
        simulate_quantization(&mut t, Dtype::F32).unwrap();
        assert_eq!(t, orig); // f32 is identity
        simulate_quantization(&mut t, Dtype::Int2).unwrap();
        assert_ne!(t, orig);
        assert_eq!(t.shape(), orig.shape());
    }

    proptest! {
        #[test]
        fn prop_f16_round_trip_relative_error(x in -60000.0f32..60000.0) {
            let rt = f16_bits_to_f32(f32_to_f16_bits(x));
            let denom = x.abs().max(1e-3);
            prop_assert!((rt - x).abs() / denom < 1e-3, "{} -> {}", x, rt);
        }

        #[test]
        fn prop_int_quant_error_bounded(
            vals in proptest::collection::vec(-10.0f32..10.0, 4..64),
            bits in prop_oneof![Just(8usize), Just(4), Just(2)]
        ) {
            let n = vals.len();
            let t = Tensor::from_vec(vals.clone(), &[1, n]).unwrap();
            let q = QuantizedTable::quantize(&t, Dtype::for_bits(bits).unwrap()).unwrap();
            let deq = q.dequantize().unwrap();
            let bound = q.scale * 0.5 + 1e-5;
            for (a, b) in vals.iter().zip(deq.as_slice()) {
                prop_assert!((a - b).abs() <= bound, "{} vs {} bound {}", a, b, bound);
            }
        }

        #[test]
        fn prop_table_round_trip_within_certified_bound(
            vals in proptest::collection::vec(-4000.0f32..4000.0, 4..96),
            dtype in prop_oneof![
                Just(Dtype::F16),
                Just(Dtype::Int8),
                Just(Dtype::Int4),
            ]
        ) {
            // The bound the table *advertises* must hold, not just the
            // internal half-step formula: this is what serving-layer
            // certification relies on. (F16's bound is relative to the
            // table's max_abs, so the range stays well inside f16's
            // finite ±65504.)
            let n = vals.len();
            let t = Tensor::from_vec(vals.clone(), &[1, n]).unwrap();
            let q = QuantizedTable::quantize(&t, dtype).unwrap();
            let deq = q.dequantize().unwrap();
            let bound = q.max_abs_error_bound() * (1.0 + 1e-5) + 1e-6;
            for (a, b) in vals.iter().zip(deq.as_slice()) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "{:?}: {} vs {} bound {}", dtype, a, b, bound
                );
            }
        }

        #[test]
        fn prop_row_quantize_round_trip_within_bound(
            vals in proptest::collection::vec(-1000.0f32..1000.0, 1..64),
            dtype in prop_oneof![
                Just(Dtype::F32),
                Just(Dtype::F16),
                Just(Dtype::Int8),
                Just(Dtype::Int4),
                Just(Dtype::Int2),
            ]
        ) {
            // The per-row-scale primitives the serving store is built on:
            // quantize_row → decode_row_into round-trips within the
            // per-row dequant_error_bound.
            let mut payload = vec![0u8; dtype.row_bytes(vals.len())];
            let scale = quantize_row(&vals, dtype, &mut payload);
            let mut out = vec![f32::NAN; vals.len()];
            decode_row_into(&payload, dtype, scale, &mut out);
            let max_abs = vals.iter().fold(0f32, |m, &x| m.max(x.abs()));
            let bound =
                dequant_error_bound(dtype, scale, max_abs) * (1.0 + 1e-5) + 1e-6;
            for (a, b) in vals.iter().zip(&out) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "{:?}: {} vs {} bound {} scale {}", dtype, a, b, bound, scale
                );
            }
        }

        #[test]
        fn prop_f16_encode_total_for_all_f32_bit_patterns(
            bits in prop_oneof![
                // Subnormal f32s (the paper sweep never hits these, the
                // converter still must not panic or mangle them).
                0u32..0x0080_0000u32,
                // Around f16's exponent range boundaries, inf and NaN.
                0x7F00_0000u32..0x7FFF_FFFFu32,
                // Everything else.
                0u32..u32::MAX,
            ]
        ) {
            for bits in [bits, bits | 0x8000_0000] {
                let x = f32::from_bits(bits);
                let h = f32_to_f16_bits(x); // must not panic
                let back = f16_bits_to_f32(h); // must not panic
                if x.is_nan() {
                    prop_assert!(back.is_nan(), "NaN must stay NaN");
                } else if x.is_infinite() {
                    prop_assert_eq!(back, x, "inf must stay signed inf");
                } else {
                    prop_assert!(!back.is_nan(), "finite {} decoded to NaN", x);
                    prop_assert_eq!(
                        back.is_sign_negative(),
                        x.is_sign_negative(),
                        "sign of {} lost", x
                    );
                }
            }
        }

        #[test]
        fn prop_quantize_row_total_for_arbitrary_bit_patterns(
            bits in proptest::collection::vec(0u32..=u32::MAX, 1..40),
            dtype in prop_oneof![
                Just(Dtype::F32),
                Just(Dtype::F16),
                Just(Dtype::Int8),
                Just(Dtype::Int4),
                Just(Dtype::Int2),
            ]
        ) {
            // Totality over every f32 bit pattern — NaNs of all
            // payloads, infinities, subnormals: the scale stays finite,
            // lossy decodes stay finite, and the certified bound holds
            // against the sanitized row.
            let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
            let mut payload = vec![0u8; dtype.row_bytes(vals.len())];
            let scale = quantize_row(&vals, dtype, &mut payload);
            prop_assert!(scale.is_finite(), "{:?} scale {}", dtype, scale);
            let mut out = vec![0f32; vals.len()];
            decode_row_into(&payload, dtype, scale, &mut out);
            if dtype == Dtype::F32 {
                // Verbatim passthrough.
                for (a, b) in vals.iter().zip(&out) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            } else {
                let (max_abs, _) = finite_max_abs(&vals);
                let bound =
                    dequant_error_bound(dtype, scale, max_abs) * (1.0 + 1e-5) + 1e-6;
                for (a, b) in vals.iter().zip(&out) {
                    let target = sanitize_non_finite(*a, max_abs);
                    if dtype == Dtype::F16 && target.abs() > 65504.0 {
                        continue; // documented f16 saturation caveat
                    }
                    prop_assert!(
                        (target - b).abs() <= bound,
                        "{:?}: {} (sanitized {}) vs {} bound {}", dtype, a, target, b, bound
                    );
                }
            }
        }

        #[test]
        fn prop_f16_decode_encode_is_identity(h in 0u16..=u16::MAX) {
            // Every half bit pattern decodes without panicking, and every
            // non-NaN pattern (subnormals, ±0, ±inf included) re-encodes
            // to exactly itself — f16 → f32 is exact, so the round trip
            // is lossless.
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                let r = f32_to_f16_bits(x);
                prop_assert!(f16_bits_to_f32(r).is_nan());
            } else {
                prop_assert_eq!(f32_to_f16_bits(x), h, "{:#06x} -> {} lost", h, x);
            }
        }
    }
}
