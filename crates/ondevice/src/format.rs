//! The flat binary on-device model format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "MEMC" | u32 version | u8 embedding_kind | u32 input_len |
//! u64 vocab | u64 hash_size | u32 emb_dim | u32 n_head_ops |
//! head ops … | embedding tables …
//! ```
//!
//! Head ops are `u8 kind` followed by op payload; tables are
//! `u8 dtype | u64 rows | u64 cols | f32 scale | payload`. Embedding
//! tables come **last** so that the header and (small) head weights share
//! the file's first pages — one fault warms them, while the big embedding
//! payload pages fault row-by-row, exactly the access pattern the mmap
//! discussion in §5.3 relies on.

use memcom_core::EmbeddingCompressor;
use memcom_nn::{BatchNorm1d, Dense, Sequential};
use memcom_tensor::Tensor;

use crate::quant::{Dtype, QuantizedTable};
use crate::{OnDeviceError, Result};

/// File magic: `MEMC`.
pub const MAGIC: [u8; 4] = *b"MEMC";
/// Current format version.
pub const VERSION: u32 = 1;

/// Which embedding front end the file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddingKind {
    /// One `v × e` table, direct row lookup.
    Full,
    /// `m × e` table indexed by `id mod m`.
    NaiveHash,
    /// MEmCom without bias: `U[m×e]`, `V[v×1]`.
    MemCom,
    /// MEmCom with bias: `U[m×e]`, `V[v×1]`, `W[v×1]`.
    MemComBias,
    /// Weinberger one-hot hashing: `m × e` kernel hit by a one-hot matmul.
    OneHotHash,
    /// Truncate-rare: `(keep+1) × e` table, OOV row at index `keep`.
    TruncateRare,
}

impl EmbeddingKind {
    fn tag(self) -> u8 {
        match self {
            EmbeddingKind::Full => 0,
            EmbeddingKind::NaiveHash => 1,
            EmbeddingKind::MemCom => 2,
            EmbeddingKind::MemComBias => 3,
            EmbeddingKind::OneHotHash => 4,
            EmbeddingKind::TruncateRare => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => EmbeddingKind::Full,
            1 => EmbeddingKind::NaiveHash,
            2 => EmbeddingKind::MemCom,
            3 => EmbeddingKind::MemComBias,
            4 => EmbeddingKind::OneHotHash,
            5 => EmbeddingKind::TruncateRare,
            _ => {
                return Err(OnDeviceError::BadFormat {
                    context: format!("unknown embedding kind {tag}"),
                })
            }
        })
    }

    /// Maps a compressor's `method_name` to a serializable kind.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::Unsupported`] for techniques the on-device
    /// interpreter does not execute (quotient–remainder, double hashing,
    /// factorized — the paper's Table 3 covers lookup- and one-hot-style
    /// front ends, to which those belong architecturally).
    pub fn from_method_name(name: &str) -> Result<Self> {
        Ok(match name {
            "uncompressed" | "reduce_dim" => EmbeddingKind::Full,
            "naive_hash" => EmbeddingKind::NaiveHash,
            "memcom_nobias" => EmbeddingKind::MemCom,
            "memcom" => EmbeddingKind::MemComBias,
            "weinberger_onehot" => EmbeddingKind::OneHotHash,
            "truncate_rare" => EmbeddingKind::TruncateRare,
            other => {
                return Err(OnDeviceError::Unsupported {
                    context: format!("method {other} has no on-device engine"),
                })
            }
        })
    }
}

/// Metadata of one serialized table: where its payload lives in the file.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Storage dtype.
    pub dtype: Dtype,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Linear quantization scale.
    pub scale: f32,
    /// Byte offset of the payload within the file.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl TableMeta {
    /// Byte range of row `r` within the file.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        let row_bytes = self.dtype.row_bytes(self.cols);
        (self.payload_offset + r * row_bytes, row_bytes)
    }
}

/// One deserialized head operation.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadOp {
    /// Mean over the sequence axis then flatten.
    AveragePool,
    /// Elementwise ReLU.
    Relu,
    /// Eval-mode batch normalization.
    BatchNorm {
        /// Feature width.
        dim: usize,
        /// `gamma, beta, mean, var` tables.
        tables: [TableMeta; 4],
        /// Stability epsilon.
        eps: f32,
    },
    /// Dense `x·W + b`.
    Dense {
        /// Input width.
        in_dim: usize,
        /// Output width.
        out_dim: usize,
        /// Kernel table.
        weight: TableMeta,
        /// Bias table.
        bias: TableMeta,
    },
}

/// A parsed on-device model: raw bytes plus the manifest needed to run it.
#[derive(Debug, Clone, PartialEq)]
pub struct OnDeviceModel {
    /// The serialized file contents.
    pub bytes: Vec<u8>,
    /// Embedding front-end kind.
    pub embedding_kind: EmbeddingKind,
    /// Fixed input length.
    pub input_len: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Hash size `m` (table rows for hashed kinds; = rows for full).
    pub hash_size: usize,
    /// Embedding output dimension.
    pub emb_dim: usize,
    /// Head operations in execution order.
    pub head_ops: Vec<HeadOp>,
    /// Embedding tables (kind-dependent count and meaning).
    pub emb_tables: Vec<TableMeta>,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn table(&mut self, t: &Tensor, dtype: Dtype) -> Result<()> {
        let q = QuantizedTable::quantize(t, dtype)?;
        self.u8(dtype.tag());
        self.u64(q.rows as u64);
        self.u64(q.cols as u64);
        self.f32(q.scale);
        self.buf.extend_from_slice(&q.data);
        Ok(())
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(OnDeviceError::BadFormat {
                context: format!("truncated file at offset {}", self.pos),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn table_meta(&mut self) -> Result<TableMeta> {
        let dtype = Dtype::from_tag(self.u8()?)?;
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let scale = self.f32()?;
        let payload_len = rows * dtype.row_bytes(cols);
        let payload_offset = self.pos;
        self.take(payload_len)?;
        Ok(TableMeta {
            dtype,
            rows,
            cols,
            scale,
            payload_offset,
            payload_len,
        })
    }
}

impl OnDeviceModel {
    /// Serializes an embedding stage plus head into the on-device format,
    /// quantizing every table to `dtype`.
    ///
    /// The head must consist of average-pool / ReLU / dropout /
    /// batch-norm / dense layers (the Code-1 repertoire); dropout is the
    /// identity at inference time and is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::Unsupported`] for other layer or embedding
    /// types.
    pub fn serialize(
        embedding: &dyn EmbeddingCompressor,
        head: &Sequential,
        input_len: usize,
        dtype: Dtype,
    ) -> Result<Vec<u8>> {
        let kind = EmbeddingKind::from_method_name(embedding.method_name())?;
        let tables = embedding.tables();
        let hash_size = tables
            .first()
            .map(|t| t.tensor.shape().dims()[0])
            .ok_or_else(|| OnDeviceError::Unsupported {
                context: "embedding has no tables".into(),
            })?;

        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u8(kind.tag());
        w.u32(input_len as u32);
        w.u64(embedding.vocab_size() as u64);
        w.u64(hash_size as u64);
        w.u32(embedding.output_dim() as u32);

        // Collect serializable head ops first (dropout skipped).
        let mut ops: Vec<&dyn memcom_nn::Layer> = Vec::new();
        for i in 0..head.len() {
            let layer = head.layer(i).expect("index in range");
            match layer.name() {
                "dropout" => continue,
                "average_pool1d" | "relu" | "batchnorm1d" | "dense" => ops.push(layer),
                other => {
                    return Err(OnDeviceError::Unsupported {
                        context: format!("head layer {other} has no on-device op"),
                    })
                }
            }
        }
        w.u32(ops.len() as u32);
        for layer in ops {
            match layer.name() {
                "average_pool1d" => w.u8(0),
                "relu" => w.u8(1),
                "batchnorm1d" => {
                    let bn = layer
                        .as_any()
                        .downcast_ref::<BatchNorm1d>()
                        .expect("name implies type");
                    w.u8(2);
                    w.u32(bn.features() as u32);
                    w.f32(bn.eps());
                    let (gamma, beta, mean, var) = bn.state();
                    // Normalization statistics keep full precision — CoreML's
                    // linear mode quantizes weights, not norm state.
                    for t in [gamma, beta, mean, var] {
                        w.table(t, Dtype::F32)?;
                    }
                }
                "dense" => {
                    let dense = layer
                        .as_any()
                        .downcast_ref::<Dense>()
                        .expect("name implies type");
                    w.u8(3);
                    w.u32(dense.in_dim() as u32);
                    w.u32(dense.out_dim() as u32);
                    w.table(dense.weight(), dtype)?;
                    w.table(dense.bias(), Dtype::F32)?;
                }
                _ => unreachable!("filtered above"),
            }
        }
        // Embedding tables last (see module docs).
        for t in embedding.tables() {
            w.table(t.tensor, dtype)?;
        }
        Ok(w.buf)
    }

    /// Parses a serialized model.
    ///
    /// # Errors
    ///
    /// Returns [`OnDeviceError::BadFormat`] for malformed input.
    pub fn parse(bytes: Vec<u8>) -> Result<Self> {
        let mut r = Reader {
            buf: &bytes,
            pos: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(OnDeviceError::BadFormat {
                context: "bad magic".into(),
            });
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(OnDeviceError::BadFormat {
                context: format!("unsupported version {version}"),
            });
        }
        let embedding_kind = EmbeddingKind::from_tag(r.u8()?)?;
        let input_len = r.u32()? as usize;
        let vocab = r.u64()? as usize;
        let hash_size = r.u64()? as usize;
        let emb_dim = r.u32()? as usize;
        let n_ops = r.u32()? as usize;
        let mut head_ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let kind = r.u8()?;
            head_ops.push(match kind {
                0 => HeadOp::AveragePool,
                1 => HeadOp::Relu,
                2 => {
                    let dim = r.u32()? as usize;
                    let eps = r.f32()?;
                    let tables = [
                        r.table_meta()?,
                        r.table_meta()?,
                        r.table_meta()?,
                        r.table_meta()?,
                    ];
                    HeadOp::BatchNorm { dim, tables, eps }
                }
                3 => {
                    let in_dim = r.u32()? as usize;
                    let out_dim = r.u32()? as usize;
                    let weight = r.table_meta()?;
                    let bias = r.table_meta()?;
                    HeadOp::Dense {
                        in_dim,
                        out_dim,
                        weight,
                        bias,
                    }
                }
                other => {
                    return Err(OnDeviceError::BadFormat {
                        context: format!("unknown op {other}"),
                    })
                }
            });
        }
        let n_emb_tables = match embedding_kind {
            EmbeddingKind::Full
            | EmbeddingKind::NaiveHash
            | EmbeddingKind::OneHotHash
            | EmbeddingKind::TruncateRare => 1,
            EmbeddingKind::MemCom => 2,
            EmbeddingKind::MemComBias => 3,
        };
        let mut emb_tables = Vec::with_capacity(n_emb_tables);
        for _ in 0..n_emb_tables {
            emb_tables.push(r.table_meta()?);
        }
        if r.pos != bytes.len() {
            return Err(OnDeviceError::BadFormat {
                context: format!("{} trailing bytes", bytes.len() - r.pos),
            });
        }
        Ok(OnDeviceModel {
            embedding_kind,
            input_len,
            vocab,
            hash_size,
            emb_dim,
            head_ops,
            emb_tables,
            bytes,
        })
    }

    /// On-disk model size in bytes — the quantity the paper's compression
    /// ratios control ("by compression, we refer to … the on-disk model
    /// size").
    pub fn file_size(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::{FullEmbedding, MemCom, MemComConfig, MethodSpec};
    use memcom_nn::{AveragePool1d, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_head(e: usize, classes: usize) -> Sequential {
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = Sequential::new();
        head.push(AveragePool1d::new());
        head.push(Relu::new());
        head.push(memcom_nn::Dropout::new(0.1, 0)); // must be skipped
        head.push(BatchNorm1d::new(e));
        head.push(Dense::new(e, classes, &mut rng));
        head
    }

    #[test]
    fn round_trip_full_embedding() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = FullEmbedding::new(40, 8, &mut rng).unwrap();
        let head = tiny_head(8, 5);
        let bytes = OnDeviceModel::serialize(&emb, &head, 16, Dtype::F32).unwrap();
        let model = OnDeviceModel::parse(bytes).unwrap();
        assert_eq!(model.embedding_kind, EmbeddingKind::Full);
        assert_eq!(model.input_len, 16);
        assert_eq!(model.vocab, 40);
        assert_eq!(model.emb_dim, 8);
        assert_eq!(model.emb_tables.len(), 1);
        assert_eq!(model.emb_tables[0].rows, 40);
        // Dropout skipped: pool, relu, bn, dense.
        assert_eq!(model.head_ops.len(), 4);
        assert!(matches!(model.head_ops[0], HeadOp::AveragePool));
        assert!(matches!(
            model.head_ops[3],
            HeadOp::Dense {
                in_dim: 8,
                out_dim: 5,
                ..
            }
        ));
    }

    #[test]
    fn memcom_bias_has_three_tables() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = MemCom::new(MemComConfig::with_bias(100, 8, 10), &mut rng).unwrap();
        let bytes = OnDeviceModel::serialize(&emb, &tiny_head(8, 3), 4, Dtype::F32).unwrap();
        let model = OnDeviceModel::parse(bytes).unwrap();
        assert_eq!(model.embedding_kind, EmbeddingKind::MemComBias);
        assert_eq!(model.emb_tables.len(), 3);
        assert_eq!(model.hash_size, 10);
        assert_eq!(model.emb_tables[1].rows, 100); // multiplier
        assert_eq!(model.emb_tables[1].cols, 1);
    }

    #[test]
    fn quantized_file_is_smaller() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = FullEmbedding::new(1000, 32, &mut rng).unwrap();
        let head = tiny_head(32, 5);
        let f32_size = OnDeviceModel::serialize(&emb, &head, 8, Dtype::F32)
            .unwrap()
            .len();
        let int8_size = OnDeviceModel::serialize(&emb, &head, 8, Dtype::Int8)
            .unwrap()
            .len();
        // Embedding dominates; int8 ≈ 1/4 the f32 payload.
        assert!(
            (int8_size as f64) < (f32_size as f64) * 0.35,
            "{int8_size} vs {f32_size}"
        );
    }

    #[test]
    fn unsupported_methods_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = MethodSpec::QuotientRemainder {
            hash_size: 10,
            combiner: memcom_core::QrCombiner::Multiply,
        }
        .build(100, 8, &mut rng)
        .unwrap();
        assert!(matches!(
            OnDeviceModel::serialize(emb.as_ref(), &tiny_head(8, 3), 4, Dtype::F32),
            Err(OnDeviceError::Unsupported { .. })
        ));
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = FullEmbedding::new(10, 4, &mut rng).unwrap();
        let bytes = OnDeviceModel::serialize(&emb, &tiny_head(4, 2), 4, Dtype::F32).unwrap();
        // Bad magic.
        let mut corrupted = bytes.clone();
        corrupted[0] = b'X';
        assert!(OnDeviceModel::parse(corrupted).is_err());
        // Truncation.
        let truncated = bytes[..bytes.len() - 3].to_vec();
        assert!(OnDeviceModel::parse(truncated).is_err());
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(OnDeviceModel::parse(extended).is_err());
        // Bad version.
        let mut bad_version = bytes;
        bad_version[4] = 99;
        assert!(OnDeviceModel::parse(bad_version).is_err());
    }

    #[test]
    fn table_row_ranges_are_disjoint_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = FullEmbedding::new(20, 8, &mut rng).unwrap();
        let bytes = OnDeviceModel::serialize(&emb, &tiny_head(8, 2), 4, Dtype::Int8).unwrap();
        let model = OnDeviceModel::parse(bytes).unwrap();
        let t = &model.emb_tables[0];
        let mut last_end = 0usize;
        for r in 0..t.rows {
            let (off, len) = t.row_range(r);
            assert!(off >= t.payload_offset);
            assert!(off + len <= t.payload_offset + t.payload_len);
            if r > 0 {
                assert_eq!(off, last_end);
            }
            last_end = off + len;
        }
    }
}
