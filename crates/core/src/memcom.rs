//! MEmCom — Multi-Embedding Compression (Algorithms 2 and 3 of the paper).
//!
//! The embedding for entity `i` is assembled "on the fly" from two jointly
//! trained tables:
//!
//! ```text
//! no-bias (Alg. 2):  E(i) = U[i mod m] ⊙ V[i]
//! bias    (Alg. 3):  E(i) = U[i mod m] ⊙ V[i] + W[i]
//! ```
//!
//! where `U ∈ ℝ^{m×e}` is a hashed table shared by `⌈v/m⌉` entities per
//! row, and `V, W ∈ ℝ^{v×1}` hold one scalar per entity that is broadcast
//! across the `e` dimensions. Because `(U, V)` are trained jointly the
//! model learns `v` distinct functions `f_i = V[i]·U[i mod m]` — a unique
//! embedding per entity at `O(m·e + v)` storage instead of `O(v·e)`.

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::hashing::mod_hash;
use crate::{CoreError, Result};

/// Configuration for a [`MemCom`] layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MemComConfig {
    /// Vocabulary size `v`. Ids are assumed frequency-sorted (the paper
    /// assigns id 1 to the most frequent entity; id 0 is padding).
    pub vocab: usize,
    /// Embedding dimensionality `e`.
    pub dim: usize,
    /// Hashed-table row count `m` (the "number of embeddings").
    pub hash_size: usize,
    /// Whether to add the per-entity bias table `W` (Algorithm 3).
    pub bias: bool,
    /// Uniform jitter applied around the multiplier init of 1.0, breaking
    /// symmetry between entities sharing a `U` row from step 0.
    pub multiplier_jitter: f32,
}

impl MemComConfig {
    /// No-bias MEmCom (Algorithm 2) with the default multiplier jitter.
    pub fn new(vocab: usize, dim: usize, hash_size: usize) -> Self {
        MemComConfig {
            vocab,
            dim,
            hash_size,
            bias: false,
            multiplier_jitter: 0.01,
        }
    }

    /// Bias-variant MEmCom (Algorithm 3).
    pub fn with_bias(vocab: usize, dim: usize, hash_size: usize) -> Self {
        MemComConfig {
            bias: true,
            ..Self::new(vocab, dim, hash_size)
        }
    }
}

/// The MEmCom compressed embedding layer (the paper's contribution).
///
/// # Example
///
/// ```
/// use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), memcom_core::CoreError> {
/// let mut rng = StdRng::seed_from_u64(7);
/// let layer = MemCom::new(MemComConfig::with_bias(1_000, 32, 100), &mut rng)?;
/// // ids 5 and 105 share U[5] but have distinct multipliers/biases.
/// let out = layer.lookup(&[5, 105])?;
/// assert_ne!(out.row(0)?, out.row(1)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemCom {
    config: MemComConfig,
    /// `U ∈ ℝ^{m×e}`: hashed shared table.
    shared: Tensor,
    /// `V ∈ ℝ^{v×1}`: per-entity multiplier.
    multiplier: Tensor,
    /// `W ∈ ℝ^{v×1}`: per-entity bias (present iff `config.bias`).
    bias: Option<Tensor>,
    shared_grads: RowGrads,
    multiplier_grads: RowGrads,
    bias_grads: RowGrads,
    shared_id: ParamId,
    multiplier_id: ParamId,
    bias_id: ParamId,
    cached_ids: Option<Vec<usize>>,
}

impl MemCom {
    /// Builds the layer from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes or
    /// `hash_size > vocab` (which would waste rows rather than compress).
    pub fn new<R: Rng + ?Sized>(config: MemComConfig, rng: &mut R) -> Result<Self> {
        if config.vocab == 0 || config.dim == 0 || config.hash_size == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "memcom needs positive sizes, got v={} e={} m={}",
                    config.vocab, config.dim, config.hash_size
                ),
            });
        }
        if config.hash_size > config.vocab {
            return Err(CoreError::BadConfig {
                context: format!(
                    "hash size {} exceeds vocabulary {} — no compression",
                    config.hash_size, config.vocab
                ),
            });
        }
        let shared = init::embedding_uniform(&[config.hash_size, config.dim], rng);
        let multiplier = init::multiplier_ones(config.vocab, config.multiplier_jitter, rng);
        let bias = config.bias.then(|| Tensor::zeros(&[config.vocab, 1]));
        Ok(MemCom {
            shared_grads: RowGrads::new(config.dim),
            multiplier_grads: RowGrads::new(1),
            bias_grads: RowGrads::new(1),
            shared_id: ParamId::fresh(),
            multiplier_id: ParamId::fresh(),
            bias_id: ParamId::fresh(),
            cached_ids: None,
            shared,
            multiplier,
            bias,
            config,
        })
    }

    /// The layer's configuration.
    pub fn config(&self) -> &MemComConfig {
        &self.config
    }

    /// Borrows the shared hashed table `U`.
    pub fn shared_table(&self) -> &Tensor {
        &self.shared
    }

    /// Borrows the multiplier table `V`.
    pub fn multiplier_table(&self) -> &Tensor {
        &self.multiplier
    }

    /// Borrows the bias table `W` when configured.
    pub fn bias_table(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// The hash bucket for entity `i` (`i mod m`, Algorithm 2 line 2).
    pub fn bucket(&self, id: usize) -> usize {
        mod_hash(id, self.config.hash_size)
    }

    /// Restores table contents (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when any shape mismatches or a bias
    /// is supplied for a no-bias layer (and vice versa).
    pub fn set_tables(
        &mut self,
        shared: Tensor,
        multiplier: Tensor,
        bias: Option<Tensor>,
    ) -> Result<()> {
        if shared.shape().dims() != [self.config.hash_size, self.config.dim] {
            return Err(CoreError::BadConfig {
                context: format!("shared table shape {} invalid", shared.shape()),
            });
        }
        if multiplier.shape().dims() != [self.config.vocab, 1] {
            return Err(CoreError::BadConfig {
                context: format!("multiplier table shape {} invalid", multiplier.shape()),
            });
        }
        match (&bias, self.config.bias) {
            (Some(b), true) => {
                if b.shape().dims() != [self.config.vocab, 1] {
                    return Err(CoreError::BadConfig {
                        context: format!("bias table shape {} invalid", b.shape()),
                    });
                }
            }
            (None, false) => {}
            _ => {
                return Err(CoreError::BadConfig {
                    context: "bias presence does not match configuration".into(),
                })
            }
        }
        self.shared = shared;
        self.multiplier = multiplier;
        self.bias = bias;
        Ok(())
    }
}

impl EmbeddingCompressor for MemCom {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.config.vocab)?;
        let e = self.config.dim;
        let mut data = Vec::with_capacity(ids.len() * e);
        for &id in ids {
            let j = self.bucket(id);
            let u = self.shared.row(j)?;
            let v = self.multiplier.as_slice()[id];
            match &self.bias {
                Some(w) => {
                    let b = w.as_slice()[id];
                    data.extend(u.iter().map(|&x| x * v + b));
                }
                None => data.extend(u.iter().map(|&x| x * v)),
            }
        }
        Ok(Tensor::from_vec(data, &[ids.len(), e])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.config.vocab)?;
        check_out(out.len(), self.config.dim)?;
        let u = self.shared.row(self.bucket(id))?;
        let v = self.multiplier.as_slice()[id];
        match &self.bias {
            Some(w) => {
                let b = w.as_slice()[id];
                for (o, &x) in out.iter_mut().zip(u) {
                    *o = x * v + b;
                }
            }
            None => {
                for (o, &x) in out.iter_mut().zip(u) {
                    *o = x * v;
                }
            }
        }
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        let e = self.config.dim;
        check_grad(grad_out, ids.len(), e)?;
        for (k, &id) in ids.iter().enumerate() {
            let j = self.bucket(id);
            let g = grad_out.row(k)?;
            let u = self.shared.row(j)?;
            let v = self.multiplier.as_slice()[id];
            // ∂L/∂U[j] = g · V[i]  (broadcast multiply back through ⊙)
            let du: Vec<f32> = g.iter().map(|&x| x * v).collect();
            self.shared_grads.add(j, &du);
            // ∂L/∂V[i] = ⟨g, U[j]⟩  (the broadcast sums over e)
            let dv: f32 = g.iter().zip(u).map(|(&a, &b)| a * b).sum();
            self.multiplier_grads.add_scalar(id, dv);
            // ∂L/∂W[i] = Σ_e g
            if self.bias.is_some() {
                self.bias_grads.add_scalar(id, g.iter().sum());
            }
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.shared_grads
            .apply(opt, self.shared_id, &mut self.shared)?;
        self.multiplier_grads
            .apply(opt, self.multiplier_id, &mut self.multiplier)?;
        if let Some(bias) = self.bias.as_mut() {
            self.bias_grads.apply(opt, self.bias_id, bias)?;
        }
        Ok(())
    }

    fn output_dim(&self) -> usize {
        self.config.dim
    }

    fn vocab_size(&self) -> usize {
        self.config.vocab
    }

    fn param_count(&self) -> usize {
        let base = self.config.hash_size * self.config.dim + self.config.vocab;
        if self.config.bias {
            base + self.config.vocab
        } else {
            base
        }
    }

    fn method_name(&self) -> &'static str {
        if self.config.bias {
            "memcom"
        } else {
            "memcom_nobias"
        }
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        let mut v = vec![
            NamedTable {
                name: "shared",
                tensor: &self.shared,
            },
            NamedTable {
                name: "multiplier",
                tensor: &self.multiplier,
            },
        ];
        if let Some(b) = &self.bias {
            v.push(NamedTable {
                name: "bias",
                tensor: b,
            });
        }
        v
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        let mut v = vec![
            NamedTableMut {
                name: "shared",
                tensor: &mut self.shared,
            },
            NamedTableMut {
                name: "multiplier",
                tensor: &mut self.multiplier,
            },
        ];
        if let Some(b) = self.bias.as_mut() {
            v.push(NamedTableMut {
                name: "bias",
                tensor: b,
            });
        }
        v
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_nn::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(bias: bool) -> MemCom {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = if bias {
            MemComConfig::with_bias(50, 4, 10)
        } else {
            MemComConfig::new(50, 4, 10)
        };
        MemCom::new(cfg, &mut rng).unwrap()
    }

    #[test]
    fn lookup_composes_multiplier() {
        let layer = make(false);
        let out = layer.lookup(&[7]).unwrap();
        let u = layer.shared_table().row(7).unwrap();
        let v = layer.multiplier_table().as_slice()[7];
        for (o, &ui) in out.row(0).unwrap().iter().zip(u) {
            assert!((o - ui * v).abs() < 1e-6);
        }
    }

    #[test]
    fn lookup_with_bias_adds_offset() {
        let mut layer = make(true);
        // Force a visible bias.
        let mut bias = Tensor::zeros(&[50, 1]);
        bias.as_mut_slice()[7] = 0.5;
        let shared = layer.shared_table().clone();
        let mult = layer.multiplier_table().clone();
        layer
            .set_tables(shared.clone(), mult.clone(), Some(bias))
            .unwrap();
        let out = layer.lookup(&[7]).unwrap();
        let u = shared.row(7).unwrap();
        let v = mult.as_slice()[7];
        for (o, &ui) in out.row(0).unwrap().iter().zip(u) {
            assert!((o - (ui * v + 0.5)).abs() < 1e-6);
        }
    }

    #[test]
    fn same_bucket_entities_differ() {
        // ids 3 and 13 share U[3]; the jittered multipliers must separate
        // them (the uniqueness property of §A.4 at initialization).
        let layer = make(false);
        let out = layer.lookup(&[3, 13]).unwrap();
        assert_ne!(out.row(0).unwrap(), out.row(1).unwrap());
    }

    #[test]
    fn param_count_matches_formula() {
        assert_eq!(make(false).param_count(), 10 * 4 + 50);
        assert_eq!(make(true).param_count(), 10 * 4 + 50 + 50);
        assert_eq!(make(false).method_name(), "memcom_nobias");
        assert_eq!(make(true).method_name(), "memcom");
        assert_eq!(make(true).tables().len(), 3);
        assert_eq!(make(false).tables().len(), 2);
    }

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MemCom::new(MemComConfig::new(0, 4, 1), &mut rng).is_err());
        assert!(MemCom::new(MemComConfig::new(10, 0, 1), &mut rng).is_err());
        assert!(MemCom::new(MemComConfig::new(10, 4, 0), &mut rng).is_err());
        // hash size larger than vocab is not compression.
        assert!(MemCom::new(MemComConfig::new(10, 4, 11), &mut rng).is_err());
        // equal is allowed (degenerates to full table + multipliers).
        assert!(MemCom::new(MemComConfig::new(10, 4, 10), &mut rng).is_ok());
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut layer = make(true);
        let ids = [3usize, 13, 9];
        let out = layer.forward(&ids).unwrap();
        // Loss = weighted sum of outputs.
        let w = Tensor::rand_uniform(out.shape().dims(), -1.0, 1.0, &mut StdRng::seed_from_u64(5));
        layer.backward(&w).unwrap();

        // Collect analytic grads before application.
        let (rows_u, gu) = layer.shared_grads.drain().unwrap();
        let (rows_v, gv) = layer.multiplier_grads.drain().unwrap();
        let (rows_w, gw) = layer.bias_grads.drain().unwrap();

        let eps = 1e-3f32;
        let loss = |l: &MemCom| -> f32 { l.lookup(&ids).unwrap().mul(&w).unwrap().sum() };

        // Check one U element per touched row.
        for (ri, &r) in rows_u.iter().enumerate() {
            let mut pert = make(true);
            copy_tables(&layer, &mut pert);
            pert.shared.row_mut(r).unwrap()[0] += eps;
            let lp = loss(&pert);
            pert.shared.row_mut(r).unwrap()[0] -= 2.0 * eps;
            let lm = loss(&pert);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gu.row(ri).unwrap()[0];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "U[{r}]: {numeric} vs {analytic}"
            );
        }
        // Check every V and W scalar.
        for (ri, &r) in rows_v.iter().enumerate() {
            let mut pert = make(true);
            copy_tables(&layer, &mut pert);
            pert.multiplier.as_mut_slice()[r] += eps;
            let lp = loss(&pert);
            pert.multiplier.as_mut_slice()[r] -= 2.0 * eps;
            let lm = loss(&pert);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gv.row(ri).unwrap()[0];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "V[{r}]: {numeric} vs {analytic}"
            );
        }
        for (ri, &r) in rows_w.iter().enumerate() {
            let mut pert = make(true);
            copy_tables(&layer, &mut pert);
            pert.bias.as_mut().unwrap().as_mut_slice()[r] += eps;
            let lp = loss(&pert);
            pert.bias.as_mut().unwrap().as_mut_slice()[r] -= 2.0 * eps;
            let lm = loss(&pert);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gw.row(ri).unwrap()[0];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "W[{r}]: {numeric} vs {analytic}"
            );
        }
    }

    fn copy_tables(src: &MemCom, dst: &mut MemCom) {
        dst.set_tables(src.shared.clone(), src.multiplier.clone(), src.bias.clone())
            .unwrap();
    }

    #[test]
    fn training_separates_shared_entities() {
        // Two entities share a bucket; pushing their embeddings toward
        // opposite targets must drive their multipliers apart — the
        // mechanism behind the paper's §A.4 uniqueness result.
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = MemCom::new(MemComConfig::new(20, 4, 10), &mut rng).unwrap();
        let mut opt = Sgd::new(0.5);
        for _ in 0..100 {
            let out = layer.forward(&[3, 13]).unwrap();
            // dL/dout = out - target, targets +1 vector vs -1 vector.
            let mut grad = out.clone();
            for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
                let target = if i < 4 { 1.0 } else { -1.0 };
                *g -= target;
            }
            grad.map_inplace(|x| x * 0.25);
            layer.backward(&grad).unwrap();
            layer.apply_gradients(&mut opt).unwrap();
        }
        let v3 = layer.multiplier_table().as_slice()[3];
        let v13 = layer.multiplier_table().as_slice()[13];
        assert!(
            (v3 - v13).abs() > 0.1,
            "multipliers failed to separate: {v3} vs {v13}"
        );
        let out = layer.lookup(&[3, 13]).unwrap();
        // The two learned embeddings point in opposite directions.
        let dot: f32 = out
            .row(0)
            .unwrap()
            .iter()
            .zip(out.row(1).unwrap())
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot < 0.0, "embeddings did not separate, dot = {dot}");
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut layer = make(false);
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 4])),
            Err(CoreError::BackwardBeforeForward)
        ));
    }

    #[test]
    fn set_tables_validation() {
        let mut layer = make(false);
        assert!(layer
            .set_tables(
                Tensor::zeros(&[10, 4]),
                Tensor::zeros(&[50, 1]),
                Some(Tensor::zeros(&[50, 1]))
            )
            .is_err()); // bias on no-bias layer
        assert!(layer
            .set_tables(Tensor::zeros(&[9, 4]), Tensor::zeros(&[50, 1]), None)
            .is_err());
        assert!(layer
            .set_tables(Tensor::zeros(&[10, 4]), Tensor::zeros(&[50, 2]), None)
            .is_err());
        assert!(layer
            .set_tables(Tensor::zeros(&[10, 4]), Tensor::zeros(&[50, 1]), None)
            .is_ok());
    }
}
