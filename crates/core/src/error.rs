//! Error type for the compressed-embedding crate.

use std::error::Error;
use std::fmt;

use memcom_nn::NnError;
use memcom_tensor::TensorError;

/// Errors produced by embedding compressors and their analysis helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying layer/optimizer operation failed.
    Nn(NnError),
    /// An id exceeded the configured vocabulary.
    IdOutOfVocab {
        /// The offending id.
        id: usize,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A configuration value is invalid (zero sizes, hash larger than
    /// vocab where forbidden, …).
    BadConfig {
        /// Human-readable description of the invalid configuration.
        context: String,
    },
    /// `backward` was called without a preceding `forward`.
    BackwardBeforeForward,
    /// The gradient tensor passed to `backward` has the wrong shape.
    BadGradient {
        /// Human-readable description of the mismatch.
        context: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            CoreError::Nn(e) => write!(f, "nn operation failed: {e}"),
            CoreError::IdOutOfVocab { id, vocab } => {
                write!(f, "id {id} out of range for vocabulary of size {vocab}")
            }
            CoreError::BadConfig { context } => write!(f, "bad configuration: {context}"),
            CoreError::BackwardBeforeForward => {
                write!(f, "backward called before forward on embedding compressor")
            }
            CoreError::BadGradient { context } => write!(f, "bad gradient: {context}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_chaining() {
        let e = CoreError::from(TensorError::EmptyTensor);
        assert!(Error::source(&e).is_some());
        let e = CoreError::IdOutOfVocab { id: 10, vocab: 5 };
        assert!(e.to_string().contains("10"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
