//! # memcom-core — compressed embedding layers
//!
//! The paper's contribution (MEmCom, Algorithms 2–3) and every baseline it
//! is compared against in the MLSys 2022 evaluation:
//!
//! | Type | Paper reference |
//! |---|---|
//! | [`FullEmbedding`] | uncompressed baseline |
//! | [`MemCom`] (bias / no-bias) | Algorithms 2 & 3 (**our approach**) |
//! | [`NaiveHashEmbedding`] | "naive hashing" (`i mod m`) |
//! | [`DoubleHashEmbedding`] | Zhang et al., RecSys 2020 |
//! | [`QuotientRemainder`] | Shi et al., 2019 (⊙ and concat variants) |
//! | [`FactorizedEmbedding`] | factorized embedding parameterization (ALBERT) |
//! | [`ReducedDimEmbedding`] | "reduce embedding dim" |
//! | [`TruncateRareEmbedding`] | "truncate rare" |
//! | [`OneHotHashEncoder`] | Weinberger feature hashing (Table 3 baseline) |
//!
//! All implementations share the [`EmbeddingCompressor`] trait: an id-batch
//! lookup in `forward`, a sparse gradient path in `backward`, and optimizer
//! application that touches only the rows used in the batch.
//!
//! Supporting analysis lives alongside: closed-form collision rates from §4
//! ([`collision`]), the fixed-model-size budget solver from §A.1
//! ([`budget`]), and the embedding-uniqueness audit from §A.4
//! ([`uniqueness`]).
//!
//! # Example
//!
//! ```
//! use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), memcom_core::CoreError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // 100K-entity vocabulary → 10K shared rows + 100K multipliers.
//! let layer = MemCom::new(MemComConfig::new(100_000, 64, 10_000), &mut rng)?;
//! assert_eq!(layer.param_count(), 10_000 * 64 + 100_000);
//! let out = layer.lookup(&[0, 12_345, 99_999])?;
//! assert_eq!(out.shape().dims(), &[3, 64]);
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod collision;
pub mod compressor;
pub mod double_hash;
pub mod error;
pub mod factorized;
pub mod full;
pub mod hashing;
pub mod memcom;
pub mod naive_hash;
pub mod one_hot_hash;
pub mod quotient_remainder;
pub mod reduced_dim;
pub mod spec;
pub mod truncate_rare;
pub mod uniqueness;

pub use compressor::{EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads};
pub use double_hash::DoubleHashEmbedding;
pub use error::CoreError;
pub use factorized::FactorizedEmbedding;
pub use full::FullEmbedding;
pub use memcom::{MemCom, MemComConfig};
pub use naive_hash::NaiveHashEmbedding;
pub use one_hot_hash::OneHotHashEncoder;
pub use quotient_remainder::{QrCombiner, QuotientRemainder};
pub use reduced_dim::ReducedDimEmbedding;
pub use spec::MethodSpec;
pub use truncate_rare::TruncateRareEmbedding;

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
