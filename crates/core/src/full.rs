//! The uncompressed baseline: one embedding row per entity.

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::{CoreError, Result};

/// The classic `v × e` embedding table — the paper's uncompressed baseline
/// against which every compression ratio and accuracy loss is measured.
#[derive(Debug)]
pub struct FullEmbedding {
    table: Tensor,
    grads: RowGrads,
    param_id: ParamId,
    vocab: usize,
    dim: usize,
    cached_ids: Option<Vec<usize>>,
}

impl FullEmbedding {
    /// Creates a `vocab × dim` table with Keras-style uniform init.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when `vocab` or `dim` is zero.
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, rng: &mut R) -> Result<Self> {
        if vocab == 0 || dim == 0 {
            return Err(CoreError::BadConfig {
                context: format!("full embedding needs positive sizes, got {vocab}×{dim}"),
            });
        }
        Ok(FullEmbedding {
            table: init::embedding_uniform(&[vocab, dim], rng),
            grads: RowGrads::new(dim),
            param_id: ParamId::fresh(),
            vocab,
            dim,
            cached_ids: None,
        })
    }

    /// Direct access to the table (tests, serialization).
    pub fn table(&self) -> &Tensor {
        &self.table
    }

    /// Replaces the table contents (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] on shape mismatch.
    pub fn set_table(&mut self, table: Tensor) -> Result<()> {
        if table.shape().dims() != [self.vocab, self.dim] {
            return Err(CoreError::BadConfig {
                context: format!(
                    "table shape {} does not match [{}, {}]",
                    table.shape(),
                    self.vocab,
                    self.dim
                ),
            });
        }
        self.table = table;
        Ok(())
    }
}

impl EmbeddingCompressor for FullEmbedding {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            data.extend_from_slice(self.table.row(id)?);
        }
        Ok(Tensor::from_vec(data, &[ids.len(), self.dim])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.vocab)?;
        check_out(out.len(), self.dim)?;
        out.copy_from_slice(self.table.row(id)?);
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        for (k, &id) in ids.iter().enumerate() {
            self.grads.add(id, grad_out.row(k)?);
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.grads.apply(opt, self.param_id, &mut self.table)
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        self.vocab * self.dim
    }

    fn method_name(&self) -> &'static str {
        "uncompressed"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![NamedTable {
            name: "embedding",
            tensor: &self.table,
        }]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![NamedTableMut {
            name: "embedding",
            tensor: &mut self.table,
        }]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_nn::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make() -> FullEmbedding {
        let mut rng = StdRng::seed_from_u64(0);
        FullEmbedding::new(10, 4, &mut rng).unwrap()
    }

    #[test]
    fn lookup_returns_table_rows() {
        let emb = make();
        let out = emb.lookup(&[2, 7, 2]).unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
        assert_eq!(out.row(0).unwrap(), emb.table().row(2).unwrap());
        assert_eq!(out.row(1).unwrap(), emb.table().row(7).unwrap());
        assert_eq!(out.row(0).unwrap(), out.row(2).unwrap());
    }

    #[test]
    fn rejects_out_of_vocab() {
        let emb = make();
        assert!(matches!(
            emb.lookup(&[10]),
            Err(CoreError::IdOutOfVocab { .. })
        ));
    }

    #[test]
    fn backward_accumulates_per_id() {
        let mut emb = make();
        let before = emb.table().row(3).unwrap().to_vec();
        emb.forward(&[3, 3]).unwrap();
        let g = Tensor::ones(&[2, 4]);
        emb.backward(&g).unwrap();
        let mut opt = Sgd::new(0.1);
        emb.apply_gradients(&mut opt).unwrap();
        // Row 3 saw the gradient twice: moved by -0.1 * 2.
        for (b, a) in before.iter().zip(emb.table().row(3).unwrap()) {
            assert!((a - (b - 0.2)).abs() < 1e-6);
        }
        // Untouched rows unchanged.
        let emb2 = make();
        assert_eq!(emb.table().row(0).unwrap(), emb2.table().row(0).unwrap());
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut emb = make();
        assert!(matches!(
            emb.backward(&Tensor::zeros(&[1, 4])),
            Err(CoreError::BackwardBeforeForward)
        ));
    }

    #[test]
    fn backward_validates_grad_shape() {
        let mut emb = make();
        emb.forward(&[1]).unwrap();
        assert!(emb.backward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn metadata() {
        let emb = make();
        assert_eq!(emb.param_count(), 40);
        assert_eq!(emb.output_dim(), 4);
        assert_eq!(emb.vocab_size(), 10);
        assert_eq!(emb.method_name(), "uncompressed");
        assert_eq!(emb.tables().len(), 1);
        assert!(FullEmbedding::new(0, 4, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn set_table_round_trip() {
        let mut emb = make();
        let t = Tensor::ones(&[10, 4]);
        emb.set_table(t.clone()).unwrap();
        assert_eq!(emb.table(), &t);
        assert!(emb.set_table(Tensor::ones(&[9, 4])).is_err());
    }
}
