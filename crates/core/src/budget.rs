//! Fixed-model-size hyperparameter solving (§A.1 of the paper).
//!
//! Appendix A.1 fixes the on-disk model size and asks: for each candidate
//! "number of embeddings" `m`, what is the largest embedding size `e` that
//! fits the budget? The paper solves this with "a simple binary search";
//! this module implements that search generically plus the MEmCom- and
//! classifier-specific parameter accounting it needs.

use crate::{CoreError, Result};

/// Bytes per FP32 parameter.
pub const BYTES_PER_PARAM: usize = 4;

/// Finds the largest `e ∈ [1, max_e]` with `params(e) <= budget_params`,
/// assuming `params` is monotonically non-decreasing in `e` (binary
/// search, as in §A.1).
///
/// Returns `None` when even `e = 1` exceeds the budget.
pub fn max_embedding_dim_under(
    budget_params: usize,
    max_e: usize,
    params: impl Fn(usize) -> usize,
) -> Option<usize> {
    if max_e == 0 || params(1) > budget_params {
        return None;
    }
    let (mut lo, mut hi) = (1usize, max_e);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if params(mid) <= budget_params {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Total parameter count of the paper's classifier/ranker with a MEmCom
/// embedding stage:
///
/// * embedding: `m·e + v` (+`v` with bias),
/// * head: the output projection `e × out_vocab + out_vocab` (the ranking
///   variant of Code 1, which drops the intermediate dense layer).
///
/// The output layer term is what couples `e` to the output vocabulary —
/// the paper calls out that the output vocabulary "indirectly affects the
/// number of parameters in the last layer".
pub fn memcom_model_params(v: usize, e: usize, m: usize, out_vocab: usize, bias: bool) -> usize {
    let emb = m * e + v + if bias { v } else { 0 };
    let head = e * out_vocab + out_vocab;
    emb + head
}

/// Solves §A.1 for MEmCom: given a byte budget and a candidate `m`, the
/// largest embedding size that fits.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] when no embedding size fits (budget
/// smaller than the fixed `v + out_vocab` cost).
pub fn solve_memcom_dim(
    budget_bytes: usize,
    v: usize,
    m: usize,
    out_vocab: usize,
    bias: bool,
    max_e: usize,
) -> Result<usize> {
    let budget_params = budget_bytes / BYTES_PER_PARAM;
    max_embedding_dim_under(budget_params, max_e, |e| {
        memcom_model_params(v, e, m, out_vocab, bias)
    })
    .ok_or_else(|| CoreError::BadConfig {
        context: format!(
            "budget of {budget_bytes} bytes cannot fit any embedding size at v={v}, m={m}, out={out_vocab}"
        ),
    })
}

/// Compression ratio as the paper computes it: total parameters of the
/// uncompressed model over total parameters of the compressed model (all
/// layers counted, not just embeddings).
///
/// # Panics
///
/// Panics when `compressed_params == 0` — that is an accounting bug.
pub fn compression_ratio(baseline_params: usize, compressed_params: usize) -> f64 {
    assert!(
        compressed_params > 0,
        "compressed model cannot have zero parameters"
    );
    baseline_params as f64 / compressed_params as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_search_exact_boundary() {
        // params(e) = 10·e; budget 100 → e = 10.
        assert_eq!(max_embedding_dim_under(100, 1024, |e| 10 * e), Some(10));
        assert_eq!(max_embedding_dim_under(99, 1024, |e| 10 * e), Some(9));
        assert_eq!(max_embedding_dim_under(9, 1024, |e| 10 * e), None);
        assert_eq!(max_embedding_dim_under(1_000_000, 64, |e| 10 * e), Some(64));
    }

    #[test]
    fn memcom_params_formula() {
        // v=100, e=8, m=10, out=20, no bias: 10·8 + 100 + 8·20 + 20 = 360.
        assert_eq!(memcom_model_params(100, 8, 10, 20, false), 360);
        assert_eq!(memcom_model_params(100, 8, 10, 20, true), 460);
    }

    #[test]
    fn solver_respects_budget() {
        let budget = 20_000 * BYTES_PER_PARAM;
        let e = solve_memcom_dim(budget, 1_000, 100, 50, false, 4096).unwrap();
        assert!(memcom_model_params(1_000, e, 100, 50, false) <= 20_000);
        assert!(memcom_model_params(1_000, e + 1, 100, 50, false) > 20_000);
    }

    #[test]
    fn solver_error_when_budget_too_small() {
        // v alone exceeds the budget.
        assert!(solve_memcom_dim(4, 1_000, 10, 10, false, 64).is_err());
    }

    #[test]
    fn larger_m_gets_smaller_e_at_fixed_budget() {
        // The A.1 tradeoff: more embeddings ⇒ smaller embedding size.
        let budget = 100_000 * BYTES_PER_PARAM;
        let e_small_m = solve_memcom_dim(budget, 10_000, 100, 100, false, 4096).unwrap();
        let e_large_m = solve_memcom_dim(budget, 10_000, 5_000, 100, false, 4096).unwrap();
        assert!(e_small_m > e_large_m, "{e_small_m} vs {e_large_m}");
    }

    #[test]
    fn ratio_accounting() {
        assert!((compression_ratio(1000, 100) - 10.0).abs() < 1e-12);
        assert!((compression_ratio(100, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero parameters")]
    fn ratio_rejects_zero() {
        let _ = compression_ratio(10, 0);
    }

    proptest! {
        #[test]
        fn prop_solution_is_maximal(budget in 100usize..1_000_000, slope in 1usize..1000) {
            if let Some(e) = max_embedding_dim_under(budget, 1 << 20, |e| slope * e) {
                prop_assert!(slope * e <= budget);
                prop_assert!(slope * (e + 1) > budget);
            } else {
                prop_assert!(slope > budget);
            }
        }

        #[test]
        fn prop_memcom_params_monotone_in_e(
            v in 1usize..10_000, m in 1usize..1_000, out in 1usize..1_000, e in 1usize..512
        ) {
            prop_assert!(
                memcom_model_params(v, e, m, out, false)
                    < memcom_model_params(v, e + 1, m, out, false)
            );
        }
    }
}
