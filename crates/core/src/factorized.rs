//! Factorized embedding parameterization (Lan et al., ALBERT).

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::{CoreError, Result};

/// Low-rank factorization `E ≈ A·B` with `A ∈ ℝ^{v×h}`, `B ∈ ℝ^{h×e}`,
/// `h ≪ e`: each entity keeps a unique low-dimensional code that a shared
/// projection lifts to the working dimensionality. Satisfies the paper's
/// unique-vector property but ignores the id frequency distribution — the
/// §4 analysis of why it underperforms on power-law vocabularies.
#[derive(Debug)]
pub struct FactorizedEmbedding {
    codes: Tensor,      // A: [v, h], trained sparsely
    projection: Tensor, // B: [h, e], trained densely
    grads_codes: RowGrads,
    grad_projection: Tensor,
    id_codes: ParamId,
    id_projection: ParamId,
    vocab: usize,
    hidden: usize,
    dim: usize,
    cached_ids: Option<Vec<usize>>,
}

impl FactorizedEmbedding {
    /// Creates the factorization with inner rank `hidden`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes or `hidden >= dim`
    /// (no compression).
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if vocab == 0 || dim == 0 || hidden == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "factorized embedding needs positive sizes, got v={vocab} e={dim} h={hidden}"
                ),
            });
        }
        if hidden >= dim {
            return Err(CoreError::BadConfig {
                context: format!("hidden size {hidden} must be smaller than embedding dim {dim}"),
            });
        }
        Ok(FactorizedEmbedding {
            codes: init::embedding_uniform(&[vocab, hidden], rng),
            projection: init::glorot_uniform(hidden, dim, rng),
            grads_codes: RowGrads::new(hidden),
            grad_projection: Tensor::zeros(&[hidden, dim]),
            id_codes: ParamId::fresh(),
            id_projection: ParamId::fresh(),
            vocab,
            hidden,
            dim,
            cached_ids: None,
        })
    }

    /// The inner (hidden) rank `h`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }
}

impl EmbeddingCompressor for FactorizedEmbedding {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let proj = self.projection.as_slice();
        let mut data = vec![0f32; ids.len() * self.dim];
        for (k, &id) in ids.iter().enumerate() {
            let code = self.codes.row(id)?;
            let out = &mut data[k * self.dim..(k + 1) * self.dim];
            for (h, &c) in code.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                let b_row = &proj[h * self.dim..(h + 1) * self.dim];
                for (o, &b) in out.iter_mut().zip(b_row) {
                    *o += c * b;
                }
            }
        }
        Ok(Tensor::from_vec(data, &[ids.len(), self.dim])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.vocab)?;
        check_out(out.len(), self.dim)?;
        out.fill(0.0);
        let proj = self.projection.as_slice();
        let code = self.codes.row(id)?;
        for (h, &c) in code.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let b_row = &proj[h * self.dim..(h + 1) * self.dim];
            for (o, &b) in out.iter_mut().zip(b_row) {
                *o += c * b;
            }
        }
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        let proj = self.projection.as_slice();
        let gp = self.grad_projection.as_mut_slice();
        for (k, &id) in ids.iter().enumerate() {
            let g = grad_out.row(k)?;
            let code = self.codes.row(id)?;
            // dA[id] = g · Bᵀ
            let mut dcode = vec![0f32; self.hidden];
            for h in 0..self.hidden {
                let b_row = &proj[h * self.dim..(h + 1) * self.dim];
                dcode[h] = g.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
            }
            self.grads_codes.add(id, &dcode);
            // dB += A[id]ᵀ ⊗ g
            for (h, &c) in code.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                let row = &mut gp[h * self.dim..(h + 1) * self.dim];
                for (o, &gi) in row.iter_mut().zip(g) {
                    *o += c * gi;
                }
            }
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.grads_codes
            .apply(opt, self.id_codes, &mut self.codes)?;
        opt.step_dense(
            self.id_projection,
            &mut self.projection,
            &self.grad_projection,
        )?;
        self.grad_projection.map_inplace(|_| 0.0);
        Ok(())
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        self.vocab * self.hidden + self.hidden * self.dim
    }

    fn method_name(&self) -> &'static str {
        "factorized"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![
            NamedTable {
                name: "codes",
                tensor: &self.codes,
            },
            NamedTable {
                name: "projection",
                tensor: &self.projection,
            },
        ]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![
            NamedTableMut {
                name: "codes",
                tensor: &mut self.codes,
            },
            NamedTableMut {
                name: "projection",
                tensor: &mut self.projection,
            },
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make() -> FactorizedEmbedding {
        let mut rng = StdRng::seed_from_u64(0);
        FactorizedEmbedding::new(50, 8, 3, &mut rng).unwrap()
    }

    #[test]
    fn lookup_is_code_times_projection() {
        let emb = make();
        let out = emb.lookup(&[11]).unwrap();
        let code = emb.codes.row(11).unwrap();
        for d in 0..8 {
            let want: f32 = (0..3)
                .map(|h| code[h] * emb.projection.at(&[h, d]).unwrap())
                .sum();
            assert!((out.row(0).unwrap()[d] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn unique_embedding_per_entity() {
        let emb = make();
        let ids: Vec<usize> = (0..50).collect();
        let out = emb.lookup(&ids).unwrap();
        for i in 0..50 {
            for j in (i + 1)..50 {
                assert_ne!(
                    out.row(i).unwrap(),
                    out.row(j).unwrap(),
                    "ids {i} and {j} collided"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut emb = make();
        let ids = [11usize, 30];
        emb.forward(&ids).unwrap();
        let w = Tensor::rand_uniform(&[2, 8], -1.0, 1.0, &mut StdRng::seed_from_u64(9));
        emb.backward(&w).unwrap();
        let (rows, gcodes) = emb.grads_codes.drain().unwrap();
        let gproj = emb.grad_projection.clone();

        let loss = |e: &FactorizedEmbedding| e.lookup(&ids).unwrap().mul(&w).unwrap().sum();
        let eps = 1e-3f32;
        // Code gradient spot checks.
        for (ri, &r) in rows.iter().enumerate() {
            for h in 0..3 {
                let mut pert = make();
                pert.codes = emb.codes.clone();
                pert.projection = emb.projection.clone();
                pert.codes.row_mut(r).unwrap()[h] += eps;
                let lp = loss(&pert);
                pert.codes.row_mut(r).unwrap()[h] -= 2.0 * eps;
                let lm = loss(&pert);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!((numeric - gcodes.row(ri).unwrap()[h]).abs() < 1e-2);
            }
        }
        // Projection gradient spot check.
        for (h, d) in [(0, 0), (1, 3), (2, 7)] {
            let mut pert = make();
            pert.codes = emb.codes.clone();
            pert.projection = emb.projection.clone();
            let idx = h * 8 + d;
            pert.projection.as_mut_slice()[idx] += eps;
            let lp = loss(&pert);
            pert.projection.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&pert);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gproj.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn param_count_formula() {
        assert_eq!(make().param_count(), 50 * 3 + 3 * 8);
        assert_eq!(make().method_name(), "factorized");
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(FactorizedEmbedding::new(10, 8, 8, &mut rng).is_err()); // h >= e
        assert!(FactorizedEmbedding::new(10, 8, 0, &mut rng).is_err());
        assert!(make().lookup(&[50]).is_err());
    }
}
