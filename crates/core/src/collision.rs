//! Collision-rate analysis (the closed forms quoted in §4 of the paper).
//!
//! The paper motivates MEmCom with the collision behaviour of hashing
//! methods:
//!
//! * naive hashing collides at rate `v/m − 1 + (1 − 1/m)^v`,
//! * double hashing at the much lower `v/m² − 1 + (1 − 1/m²)^v`,
//! * MEmCom / quotient–remainder / full tables never collide (unique
//!   representation per id).
//!
//! Both closed forms equal `E[collisions] / m`, i.e. expected *excess*
//! entities per bucket beyond the first. This module provides the formulas
//! plus empirical counters so property tests can pin them to Monte-Carlo
//! reality.

use std::collections::HashMap;

/// Expected number of colliding entities (entities minus occupied buckets)
/// when `v` ids are hashed uniformly into `m` buckets:
/// `v − m·(1 − (1 − 1/m)^v)`.
pub fn expected_collisions(v: usize, m: usize) -> f64 {
    let (vf, mf) = (v as f64, m as f64);
    vf - mf * (1.0 - (1.0 - 1.0 / mf).powf(vf))
}

/// The paper's §4 naive-hashing collision rate `v/m − 1 + (1 − 1/m)^v`
/// (expected collisions per bucket).
pub fn naive_collision_rate(v: usize, m: usize) -> f64 {
    let (vf, mf) = (v as f64, m as f64);
    vf / mf - 1.0 + (1.0 - 1.0 / mf).powf(vf)
}

/// The paper's §4 double-hashing collision rate
/// `v/m² − 1 + (1 − 1/m²)^v`: joint bucketing behaves like a single hash
/// into `m²` cells.
pub fn double_collision_rate(v: usize, m: usize) -> f64 {
    naive_collision_rate(v, m * m)
}

/// Empirically counts colliding entities under an arbitrary bucketing
/// function (entities whose bucket is shared with at least one other id).
pub fn count_shared_entities(v: usize, bucket_of: impl Fn(usize) -> usize) -> usize {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for id in 0..v {
        *counts.entry(bucket_of(id)).or_insert(0) += 1;
    }
    counts.values().filter(|&&c| c > 1).copied().sum()
}

/// Empirical collisions in the paper's sense: `v` minus the number of
/// occupied buckets.
pub fn count_collisions(v: usize, bucket_of: impl Fn(usize) -> usize) -> usize {
    let mut occupied: HashMap<usize, ()> = HashMap::new();
    for id in 0..v {
        occupied.insert(bucket_of(id), ());
    }
    v - occupied.len()
}

/// Fraction of entities that do **not** own a unique representation under
/// `bucket_of` — 0.0 means the method satisfies the paper's "unique
/// vector" property.
pub fn non_unique_fraction(v: usize, bucket_of: impl Fn(usize) -> usize) -> f64 {
    if v == 0 {
        return 0.0;
    }
    count_shared_entities(v, bucket_of) as f64 / v as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::{mod_hash, seeded_hash};
    use proptest::prelude::*;

    #[test]
    fn paper_rate_is_expected_collisions_per_bucket() {
        for &(v, m) in &[(1000usize, 100usize), (100_000, 10_000), (500, 499)] {
            let per_bucket = naive_collision_rate(v, m);
            let total = expected_collisions(v, m);
            assert!((per_bucket - total / m as f64).abs() < 1e-9, "v={v} m={m}");
        }
    }

    #[test]
    fn mod_hash_collisions_exact() {
        // mod m is deterministic: v=100, m=10 → every bucket holds 10 ids,
        // collisions = v − m = 90.
        assert_eq!(count_collisions(100, |i| mod_hash(i, 10)), 90);
        assert_eq!(count_shared_entities(100, |i| mod_hash(i, 10)), 100);
        assert!((non_unique_fraction(100, |i| mod_hash(i, 10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_compression_means_no_collisions() {
        assert_eq!(count_collisions(50, |i| i), 0);
        assert_eq!(non_unique_fraction(50, |i| i) as i64, 0);
    }

    #[test]
    fn double_hash_rate_far_below_naive() {
        let v = 100_000;
        let m = 10_000;
        assert!(double_collision_rate(v, m) < naive_collision_rate(v, m) / 100.0);
    }

    #[test]
    fn seeded_hash_matches_theory_monte_carlo() {
        // Random hashing into m buckets should match the closed form
        // within a few percent at this scale.
        let v = 50_000;
        let m = 5_000;
        let empirical = count_collisions(v, |i| seeded_hash(i, m, 7)) as f64;
        let theory = expected_collisions(v, m);
        let rel = (empirical - theory).abs() / theory;
        assert!(
            rel < 0.05,
            "empirical {empirical} vs theory {theory} (rel {rel})"
        );
    }

    #[test]
    fn joint_double_hash_matches_m_squared_theory() {
        let v = 20_000;
        let m = 200; // m² = 40_000 joint cells
        let empirical =
            count_collisions(v, |i| seeded_hash(i, m, 1) * m + seeded_hash(i, m, 2)) as f64;
        let theory = expected_collisions(v, m * m);
        let rel = (empirical - theory).abs() / theory.max(1.0);
        assert!(rel < 0.15, "empirical {empirical} vs theory {theory}");
    }

    proptest! {
        #[test]
        fn prop_rate_nonnegative_and_bounded(v in 1usize..100_000, m in 1usize..10_000) {
            let r = naive_collision_rate(v, m);
            // Rate per bucket lies in [max(0, v/m − 1), v/m].
            prop_assert!(r >= -1e-9);
            prop_assert!(r <= v as f64 / m as f64 + 1e-9);
        }

        #[test]
        fn prop_more_buckets_fewer_collisions(v in 100usize..10_000, m in 2usize..500) {
            prop_assert!(expected_collisions(v, m) + 1e-9 >= expected_collisions(v, m * 2));
        }

        #[test]
        fn prop_empirical_counts_consistent(v in 1usize..2_000, m in 1usize..100) {
            // shared entities ≥ collisions (each collision implies ≥2 sharers).
            let shared = count_shared_entities(v, |i| mod_hash(i, m));
            let collisions = count_collisions(v, |i| mod_hash(i, m));
            prop_assert!(shared >= collisions);
            prop_assert!(collisions <= v);
        }
    }
}
