//! Naive hashing baseline: `i mod m` with no disambiguation.

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::hashing::mod_hash;
use crate::{CoreError, Result};

/// The "naive hashing" baseline of §5: entities are bucketed by `i mod m`
/// into an `m × e` table, so `⌈v/m⌉` entities *share* (are
/// indistinguishable in) each embedding — the collision problem MEmCom's
/// multipliers exist to fix.
#[derive(Debug)]
pub struct NaiveHashEmbedding {
    table: Tensor,
    grads: RowGrads,
    param_id: ParamId,
    vocab: usize,
    dim: usize,
    hash_size: usize,
    cached_ids: Option<Vec<usize>>,
}

impl NaiveHashEmbedding {
    /// Creates an `m × e` hashed table for a `vocab`-entity id space.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes or
    /// `hash_size > vocab`.
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        dim: usize,
        hash_size: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if vocab == 0 || dim == 0 || hash_size == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "naive hash needs positive sizes, got v={vocab} e={dim} m={hash_size}"
                ),
            });
        }
        if hash_size > vocab {
            return Err(CoreError::BadConfig {
                context: format!("hash size {hash_size} exceeds vocabulary {vocab}"),
            });
        }
        Ok(NaiveHashEmbedding {
            table: init::embedding_uniform(&[hash_size, dim], rng),
            grads: RowGrads::new(dim),
            param_id: ParamId::fresh(),
            vocab,
            dim,
            hash_size,
            cached_ids: None,
        })
    }

    /// The bucket for `id`.
    pub fn bucket(&self, id: usize) -> usize {
        mod_hash(id, self.hash_size)
    }

    /// Borrows the hashed table.
    pub fn table(&self) -> &Tensor {
        &self.table
    }
}

impl EmbeddingCompressor for NaiveHashEmbedding {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            data.extend_from_slice(self.table.row(self.bucket(id))?);
        }
        Ok(Tensor::from_vec(data, &[ids.len(), self.dim])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.vocab)?;
        check_out(out.len(), self.dim)?;
        out.copy_from_slice(self.table.row(self.bucket(id))?);
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        for (k, &id) in ids.iter().enumerate() {
            self.grads.add(self.bucket(id), grad_out.row(k)?);
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.grads.apply(opt, self.param_id, &mut self.table)
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        self.hash_size * self.dim
    }

    fn method_name(&self) -> &'static str {
        "naive_hash"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![NamedTable {
            name: "hashed",
            tensor: &self.table,
        }]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![NamedTableMut {
            name: "hashed",
            tensor: &mut self.table,
        }]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make() -> NaiveHashEmbedding {
        let mut rng = StdRng::seed_from_u64(0);
        NaiveHashEmbedding::new(100, 4, 10, &mut rng).unwrap()
    }

    #[test]
    fn colliding_ids_share_embeddings() {
        let emb = make();
        let out = emb.lookup(&[7, 17, 97]).unwrap();
        // 7, 17, 97 ≡ 7 mod 10 → identical rows (the failure mode MEmCom fixes).
        assert_eq!(out.row(0).unwrap(), out.row(1).unwrap());
        assert_eq!(out.row(0).unwrap(), out.row(2).unwrap());
    }

    #[test]
    fn distinct_buckets_differ() {
        let emb = make();
        let out = emb.lookup(&[3, 4]).unwrap();
        assert_ne!(out.row(0).unwrap(), out.row(1).unwrap());
    }

    #[test]
    fn gradient_lands_on_shared_row() {
        let mut emb = make();
        let before = emb.table().row(7).unwrap().to_vec();
        emb.forward(&[7, 17]).unwrap();
        emb.backward(&Tensor::ones(&[2, 4])).unwrap();
        let mut opt = memcom_nn::Sgd::new(0.1);
        emb.apply_gradients(&mut opt).unwrap();
        // Both grads summed into row 7: Δ = −0.1·2.
        for (b, a) in before.iter().zip(emb.table().row(7).unwrap()) {
            assert!((a - (b - 0.2)).abs() < 1e-6);
        }
    }

    #[test]
    fn param_count_is_hashed_table_only() {
        assert_eq!(make().param_count(), 40);
        assert_eq!(make().method_name(), "naive_hash");
    }

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(NaiveHashEmbedding::new(10, 4, 11, &mut rng).is_err());
        assert!(NaiveHashEmbedding::new(10, 0, 5, &mut rng).is_err());
        assert!(matches!(
            make().lookup(&[100]),
            Err(CoreError::IdOutOfVocab { .. })
        ));
    }
}
