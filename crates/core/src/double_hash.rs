//! Double hashing baseline (Zhang et al., RecSys 2020).

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::hashing::seeded_hash;
use crate::{CoreError, Result};

/// Frequency-based double hashing: two *independent* hash functions index
/// two `m × e/2` tables and the halves are concatenated. Two entities only
/// receive identical embeddings when **both** hashes collide, dropping the
/// collision rate from `O(v/m)` to `O(v/m²)` — but uniqueness is still not
/// guaranteed, unlike MEmCom.
#[derive(Debug)]
pub struct DoubleHashEmbedding {
    table_a: Tensor,
    table_b: Tensor,
    grads_a: RowGrads,
    grads_b: RowGrads,
    id_a: ParamId,
    id_b: ParamId,
    vocab: usize,
    dim: usize,
    half: usize,
    hash_size: usize,
    seed_a: u64,
    seed_b: u64,
    cached_ids: Option<Vec<usize>>,
}

impl DoubleHashEmbedding {
    /// Creates two `hash_size × dim/2` tables. `dim` must be even so the
    /// concatenated output matches the uncompressed dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes, odd `dim`, or
    /// `hash_size > vocab`.
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        dim: usize,
        hash_size: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if vocab == 0 || dim == 0 || hash_size == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "double hash needs positive sizes, got v={vocab} e={dim} m={hash_size}"
                ),
            });
        }
        if !dim.is_multiple_of(2) {
            return Err(CoreError::BadConfig {
                context: format!("double hash requires an even embedding dim, got {dim}"),
            });
        }
        if hash_size > vocab {
            return Err(CoreError::BadConfig {
                context: format!("hash size {hash_size} exceeds vocabulary {vocab}"),
            });
        }
        let half = dim / 2;
        Ok(DoubleHashEmbedding {
            table_a: init::embedding_uniform(&[hash_size, half], rng),
            table_b: init::embedding_uniform(&[hash_size, half], rng),
            grads_a: RowGrads::new(half),
            grads_b: RowGrads::new(half),
            id_a: ParamId::fresh(),
            id_b: ParamId::fresh(),
            vocab,
            dim,
            half,
            hash_size,
            seed_a: 0x5EEDA,
            seed_b: 0x5EEDB,
            cached_ids: None,
        })
    }

    /// The two bucket indices for `id`.
    pub fn buckets(&self, id: usize) -> (usize, usize) {
        (
            seeded_hash(id, self.hash_size, self.seed_a),
            seeded_hash(id, self.hash_size, self.seed_b),
        )
    }
}

impl EmbeddingCompressor for DoubleHashEmbedding {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            let (a, b) = self.buckets(id);
            data.extend_from_slice(self.table_a.row(a)?);
            data.extend_from_slice(self.table_b.row(b)?);
        }
        Ok(Tensor::from_vec(data, &[ids.len(), self.dim])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.vocab)?;
        check_out(out.len(), self.dim)?;
        let (a, b) = self.buckets(id);
        out[..self.half].copy_from_slice(self.table_a.row(a)?);
        out[self.half..].copy_from_slice(self.table_b.row(b)?);
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        for (k, &id) in ids.iter().enumerate() {
            let (a, b) = self.buckets(id);
            let g = grad_out.row(k)?;
            self.grads_a.add(a, &g[..self.half]);
            self.grads_b.add(b, &g[self.half..]);
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.grads_a.apply(opt, self.id_a, &mut self.table_a)?;
        self.grads_b.apply(opt, self.id_b, &mut self.table_b)
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        2 * self.hash_size * self.half
    }

    fn method_name(&self) -> &'static str {
        "double_hash"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![
            NamedTable {
                name: "hashed_a",
                tensor: &self.table_a,
            },
            NamedTable {
                name: "hashed_b",
                tensor: &self.table_b,
            },
        ]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![
            NamedTableMut {
                name: "hashed_a",
                tensor: &mut self.table_a,
            },
            NamedTableMut {
                name: "hashed_b",
                tensor: &mut self.table_b,
            },
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn make() -> DoubleHashEmbedding {
        let mut rng = StdRng::seed_from_u64(0);
        DoubleHashEmbedding::new(1000, 8, 20, &mut rng).unwrap()
    }

    #[test]
    fn output_concatenates_halves() {
        let emb = make();
        let out = emb.lookup(&[42]).unwrap();
        let (a, b) = emb.buckets(42);
        assert_eq!(&out.row(0).unwrap()[..4], emb.table_a.row(a).unwrap());
        assert_eq!(&out.row(0).unwrap()[4..], emb.table_b.row(b).unwrap());
    }

    #[test]
    fn fewer_full_collisions_than_single_hash() {
        let emb = make();
        // Count id pairs with identical *joint* buckets vs single-hash.
        let mut joint = HashSet::new();
        let mut single = HashSet::new();
        for id in 0..1000 {
            joint.insert(emb.buckets(id));
            single.insert(emb.buckets(id).0);
        }
        // Joint space realizes far more distinct codes.
        assert!(
            joint.len() > 3 * single.len(),
            "joint {} vs single {}",
            joint.len(),
            single.len()
        );
    }

    #[test]
    fn gradients_split_between_tables() {
        let mut emb = make();
        let (a, b) = emb.buckets(5);
        let before_a = emb.table_a.row(a).unwrap().to_vec();
        let before_b = emb.table_b.row(b).unwrap().to_vec();
        emb.forward(&[5]).unwrap();
        let mut g = Tensor::zeros(&[1, 8]);
        for i in 0..4 {
            g.as_mut_slice()[i] = 1.0; // gradient only on the first half
        }
        emb.backward(&g).unwrap();
        let mut opt = memcom_nn::Sgd::new(0.1);
        emb.apply_gradients(&mut opt).unwrap();
        // Table A moved, table B untouched.
        assert!(emb
            .table_a
            .row(a)
            .unwrap()
            .iter()
            .zip(&before_a)
            .all(|(x, y)| (x - (y - 0.1)).abs() < 1e-6));
        assert_eq!(emb.table_b.row(b).unwrap(), &before_b[..]);
    }

    #[test]
    fn param_count_and_validation() {
        assert_eq!(make().param_count(), 2 * 20 * 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(DoubleHashEmbedding::new(100, 7, 10, &mut rng).is_err()); // odd dim
        assert!(DoubleHashEmbedding::new(10, 8, 11, &mut rng).is_err());
        assert!(DoubleHashEmbedding::new(0, 8, 1, &mut rng).is_err());
    }
}
