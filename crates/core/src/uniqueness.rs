//! Embedding-uniqueness audit (§A.4 of the paper).
//!
//! The paper validates MEmCom's unique-embedding claim empirically: on a
//! trained Arcade model at 40x compression, more than 99.98% of multiplier
//! pairs sharing a `U` row differ by more than `1e-5`. This module
//! reproduces that audit for any trained [`MemCom`] layer.

use std::collections::HashMap;

use crate::memcom::MemCom;

/// Result of auditing one trained MEmCom layer.
#[derive(Debug, Clone, PartialEq)]
pub struct UniquenessReport {
    /// Number of multiplier pairs that share a `U` row.
    pub shared_pairs: usize,
    /// Pairs whose multipliers differ by more than the threshold.
    pub distinct_pairs: usize,
    /// The comparison threshold (the paper uses `1e-5`).
    pub threshold: f32,
}

impl UniquenessReport {
    /// Fraction of shared-row pairs with distinct multipliers — the number
    /// the paper reports as "more than 99.98% of cases".
    pub fn distinct_fraction(&self) -> f64 {
        if self.shared_pairs == 0 {
            1.0
        } else {
            self.distinct_pairs as f64 / self.shared_pairs as f64
        }
    }
}

impl std::fmt::Display for UniquenessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4}% of {} same-bucket multiplier pairs differ by > {}",
            self.distinct_fraction() * 100.0,
            self.shared_pairs,
            self.threshold
        )
    }
}

/// Audits multiplier uniqueness over every pair of entities sharing a
/// hash bucket, using the paper's `1e-5` threshold.
pub fn audit(layer: &MemCom) -> UniquenessReport {
    audit_with_threshold(layer, 1e-5)
}

/// Audits with a custom threshold.
///
/// Buckets with `k` members contribute `k·(k−1)/2` pairs. For very large
/// vocabularies this is the dominant cost (the paper's Arcade audit is
/// ~300K ids in 7.5K buckets ⇒ ~6M pairs — fine in a release build).
pub fn audit_with_threshold(layer: &MemCom, threshold: f32) -> UniquenessReport {
    let mults = layer.multiplier_table().as_slice();
    let mut buckets: HashMap<usize, Vec<f32>> = HashMap::new();
    for (id, &mult) in mults.iter().enumerate().take(layer.config().vocab) {
        buckets.entry(layer.bucket(id)).or_default().push(mult);
    }
    let mut shared_pairs = 0usize;
    let mut distinct_pairs = 0usize;
    for members in buckets.values() {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                shared_pairs += 1;
                if (members[i] - members[j]).abs() > threshold {
                    distinct_pairs += 1;
                }
            }
        }
    }
    UniquenessReport {
        shared_pairs,
        distinct_pairs,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memcom::MemComConfig;
    use crate::EmbeddingCompressor;
    use memcom_nn::Sgd;
    use memcom_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn jittered_init_is_already_mostly_unique() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = MemCom::new(MemComConfig::new(1000, 8, 100), &mut rng).unwrap();
        let report = audit(&layer);
        // 1000 ids in 100 buckets → 100 · C(10,2) = 4500 pairs.
        assert_eq!(report.shared_pairs, 4500);
        assert!(report.distinct_fraction() > 0.99, "{report}");
    }

    #[test]
    fn zero_jitter_init_is_fully_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MemComConfig {
            multiplier_jitter: 0.0,
            ..MemComConfig::new(100, 4, 10)
        };
        let layer = MemCom::new(cfg, &mut rng).unwrap();
        let report = audit(&layer);
        assert_eq!(report.distinct_pairs, 0);
        assert_eq!(report.distinct_fraction(), 0.0);
    }

    #[test]
    fn training_restores_uniqueness_from_degenerate_init() {
        // Start with identical multipliers, push entities toward random
        // targets, and confirm the audit detects the divergence — the §A.4
        // mechanism end-to-end.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MemComConfig {
            multiplier_jitter: 0.0,
            ..MemComConfig::new(40, 4, 8)
        };
        let mut layer = MemCom::new(cfg, &mut rng).unwrap();
        let mut opt = Sgd::new(0.3);
        let ids: Vec<usize> = (0..40).collect();
        let targets = Tensor::rand_uniform(&[40, 4], -1.0, 1.0, &mut rng);
        for _ in 0..60 {
            let out = layer.forward(&ids).unwrap();
            let grad = out.sub(&targets).unwrap().scale(1.0 / 40.0);
            layer.backward(&grad).unwrap();
            layer.apply_gradients(&mut opt).unwrap();
        }
        let report = audit(&layer);
        assert!(
            report.distinct_fraction() > 0.95,
            "training failed to separate multipliers: {report}"
        );
    }

    #[test]
    fn report_display_and_empty_case() {
        let report = UniquenessReport {
            shared_pairs: 0,
            distinct_pairs: 0,
            threshold: 1e-5,
        };
        assert_eq!(report.distinct_fraction(), 1.0);
        assert!(report.to_string().contains('%'));
    }
}
