//! Declarative construction of any compression technique.
//!
//! The experiment harness sweeps dozens of (technique, hyperparameter)
//! points per figure; [`MethodSpec`] is the serializable description of one
//! such point and [`MethodSpec::build`] instantiates the compressor.

use rand::Rng;

use crate::compressor::EmbeddingCompressor;
use crate::double_hash::DoubleHashEmbedding;
use crate::factorized::FactorizedEmbedding;
use crate::full::FullEmbedding;
use crate::memcom::{MemCom, MemComConfig};
use crate::naive_hash::NaiveHashEmbedding;
use crate::one_hot_hash::OneHotHashEncoder;
use crate::quotient_remainder::{QrCombiner, QuotientRemainder};
use crate::reduced_dim::ReducedDimEmbedding;
use crate::truncate_rare::TruncateRareEmbedding;
use crate::Result;

/// One embedding-compression configuration, as plotted in Figures 1–3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MethodSpec {
    /// Uncompressed `v × e` table (the baseline of every figure).
    Uncompressed,
    /// MEmCom with `hash_size` shared rows (Algorithm 2/3).
    MemCom {
        /// Rows in the shared table `U`.
        hash_size: usize,
        /// Whether to add the per-entity bias `W` (Algorithm 3).
        bias: bool,
    },
    /// Naive `i mod m` hashing.
    NaiveHash {
        /// Rows in the hashed table.
        hash_size: usize,
    },
    /// Double hashing with concatenated halves.
    DoubleHash {
        /// Rows in each of the two hashed tables.
        hash_size: usize,
    },
    /// Quotient–remainder with the chosen combiner.
    QuotientRemainder {
        /// Rows in the remainder table.
        hash_size: usize,
        /// Whether halves multiply or concatenate.
        combiner: QrCombiner,
    },
    /// Factorized (low-rank) embedding with inner rank `hidden`.
    Factorized {
        /// Inner factorization rank `h`.
        hidden: usize,
    },
    /// Full table at a reduced dimension.
    ReduceDim {
        /// The reduced embedding size.
        dim: usize,
    },
    /// Keep only the `keep` most frequent entities.
    TruncateRare {
        /// Number of entities that keep their own embedding.
        keep: usize,
    },
    /// Weinberger one-hot feature hashing (Table 3 runtime baseline).
    WeinbergerOneHot {
        /// One-hot width / kernel rows.
        hash_size: usize,
    },
}

impl MethodSpec {
    /// Instantiates the compressor for vocabulary `vocab` at reference
    /// embedding dimension `dim`.
    ///
    /// # Errors
    ///
    /// Propagates the constructor validation of the chosen technique.
    pub fn build<R: Rng + ?Sized>(
        &self,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Result<Box<dyn EmbeddingCompressor>> {
        Ok(match *self {
            MethodSpec::Uncompressed => Box::new(FullEmbedding::new(vocab, dim, rng)?),
            MethodSpec::MemCom { hash_size, bias } => {
                let cfg = if bias {
                    MemComConfig::with_bias(vocab, dim, hash_size)
                } else {
                    MemComConfig::new(vocab, dim, hash_size)
                };
                Box::new(MemCom::new(cfg, rng)?)
            }
            MethodSpec::NaiveHash { hash_size } => {
                Box::new(NaiveHashEmbedding::new(vocab, dim, hash_size, rng)?)
            }
            MethodSpec::DoubleHash { hash_size } => {
                Box::new(DoubleHashEmbedding::new(vocab, dim, hash_size, rng)?)
            }
            MethodSpec::QuotientRemainder {
                hash_size,
                combiner,
            } => Box::new(QuotientRemainder::new(
                vocab, dim, hash_size, combiner, rng,
            )?),
            MethodSpec::Factorized { hidden } => {
                Box::new(FactorizedEmbedding::new(vocab, dim, hidden, rng)?)
            }
            MethodSpec::ReduceDim { dim: reduced } => {
                Box::new(ReducedDimEmbedding::new(vocab, reduced, dim, rng)?)
            }
            MethodSpec::TruncateRare { keep } => {
                Box::new(TruncateRareEmbedding::new(vocab, dim, keep, rng)?)
            }
            MethodSpec::WeinbergerOneHot { hash_size } => {
                Box::new(OneHotHashEncoder::new(vocab, dim, hash_size, rng)?)
            }
        })
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            MethodSpec::Uncompressed => "uncompressed".into(),
            MethodSpec::MemCom {
                hash_size,
                bias: true,
            } => format!("memcom(m={hash_size})"),
            MethodSpec::MemCom {
                hash_size,
                bias: false,
            } => {
                format!("memcom_nobias(m={hash_size})")
            }
            MethodSpec::NaiveHash { hash_size } => format!("naive_hash(m={hash_size})"),
            MethodSpec::DoubleHash { hash_size } => format!("double_hash(m={hash_size})"),
            MethodSpec::QuotientRemainder {
                hash_size,
                combiner: QrCombiner::Multiply,
            } => {
                format!("qr_mult(m={hash_size})")
            }
            MethodSpec::QuotientRemainder {
                hash_size,
                combiner: QrCombiner::Concat,
            } => {
                format!("qr_concat(m={hash_size})")
            }
            MethodSpec::Factorized { hidden } => format!("factorized(h={hidden})"),
            MethodSpec::ReduceDim { dim } => format!("reduce_dim(e={dim})"),
            MethodSpec::TruncateRare { keep } => format!("truncate_rare(k={keep})"),
            MethodSpec::WeinbergerOneHot { hash_size } => format!("weinberger(m={hash_size})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_specs() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Uncompressed,
            MethodSpec::MemCom {
                hash_size: 10,
                bias: true,
            },
            MethodSpec::MemCom {
                hash_size: 10,
                bias: false,
            },
            MethodSpec::NaiveHash { hash_size: 10 },
            MethodSpec::DoubleHash { hash_size: 10 },
            MethodSpec::QuotientRemainder {
                hash_size: 10,
                combiner: QrCombiner::Multiply,
            },
            MethodSpec::QuotientRemainder {
                hash_size: 10,
                combiner: QrCombiner::Concat,
            },
            MethodSpec::Factorized { hidden: 4 },
            MethodSpec::ReduceDim { dim: 8 },
            MethodSpec::TruncateRare { keep: 20 },
            MethodSpec::WeinbergerOneHot { hash_size: 10 },
        ]
    }

    #[test]
    fn every_spec_builds_and_looks_up() {
        let mut rng = StdRng::seed_from_u64(0);
        for spec in all_specs() {
            let emb = spec.build(100, 16, &mut rng).unwrap_or_else(|e| {
                panic!("spec {spec:?} failed to build: {e}");
            });
            let out = emb.lookup(&[0, 50, 99]).unwrap();
            assert_eq!(out.shape().dims()[0], 3);
            assert_eq!(out.shape().dims()[1], emb.output_dim());
            assert!(emb.param_count() > 0);
        }
    }

    #[test]
    fn embed_into_matches_lookup_for_every_spec() {
        use crate::CoreError;
        let mut rng = StdRng::seed_from_u64(17);
        for spec in all_specs() {
            let emb = spec.build(100, 16, &mut rng).unwrap();
            let mut out = vec![0.0f32; emb.output_dim()];
            for id in [0usize, 1, 49, 99] {
                emb.embed_into(id, &mut out).unwrap();
                let want = emb.lookup(&[id]).unwrap();
                assert_eq!(out.as_slice(), want.as_slice(), "{spec:?} id {id}");
            }
            // Buffer poisoning between calls must not leak into results
            // (catches additive implementations that skip the reset).
            out.fill(f32::NAN);
            emb.embed_into(7, &mut out).unwrap();
            assert_eq!(
                out.as_slice(),
                emb.lookup(&[7]).unwrap().as_slice(),
                "{spec:?} poisoned buffer"
            );
            assert!(matches!(
                emb.embed_into(100, &mut out),
                Err(CoreError::IdOutOfVocab {
                    id: 100,
                    vocab: 100
                })
            ));
            let mut short = vec![0.0f32; emb.output_dim() - 1];
            assert!(matches!(
                emb.embed_into(0, &mut short),
                Err(CoreError::BadConfig { .. })
            ));
        }
    }

    #[test]
    fn labels_are_distinct_and_informative() {
        let labels: Vec<String> = all_specs().iter().map(|s| s.label()).collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
        assert!(labels.iter().any(|l| l.contains("memcom")));
    }

    #[test]
    fn only_reduce_dim_changes_output_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        for spec in all_specs() {
            let emb = spec.build(100, 16, &mut rng).unwrap();
            match spec {
                MethodSpec::ReduceDim { dim } => assert_eq!(emb.output_dim(), dim),
                _ => assert_eq!(emb.output_dim(), 16, "{spec:?}"),
            }
        }
    }

    #[test]
    fn bad_hyperparameters_propagate_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MethodSpec::MemCom {
            hash_size: 1000,
            bias: false
        }
        .build(100, 16, &mut rng)
        .is_err());
        assert!(MethodSpec::Factorized { hidden: 16 }
            .build(100, 16, &mut rng)
            .is_err());
    }
}
