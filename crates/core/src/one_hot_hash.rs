//! Weinberger feature hashing over one-hot inputs (Table 3 baseline).

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, ops, Tensor};
use rand::Rng;

use crate::compressor::{check_grad, check_ids, EmbeddingCompressor, NamedTable, NamedTableMut};
use crate::hashing::seeded_hash;
use crate::{CoreError, Result};

/// The fixed hash seed used by every [`OneHotHashEncoder`]; exposed so the
/// on-device engine can reproduce the same bucketing from serialized
/// weights alone.
pub const ONE_HOT_SEED: u64 = 0x0E1_407;

/// Weinberger et al. (2009) feature hashing as the paper benchmarks it on
/// device: ids are hashed into an `m`-dimensional **one-hot vector** which
/// is then *matrix-multiplied* with a dense `m × e` kernel.
///
/// Mathematically this selects the same row a lookup would, but the
/// compute/memory profile is completely different — the one-hot
/// materialization costs `O(b·m)` memory and the matmul touches the whole
/// kernel, which is exactly why Table 3 shows it losing to MEmCom's
/// `mmap`-friendly lookup on phones. The [`lookup`](Self::lookup) path here
/// deliberately performs the real one-hot matmul so the on-device simulator
/// measures the honest cost.
#[derive(Debug)]
pub struct OneHotHashEncoder {
    kernel: Tensor,
    grad_kernel: Tensor,
    param_id: ParamId,
    vocab: usize,
    dim: usize,
    hash_size: usize,
    seed: u64,
    cached_ids: Option<Vec<usize>>,
}

impl OneHotHashEncoder {
    /// Creates the hashing encoder with a `hash_size × dim` dense kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes.
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        dim: usize,
        hash_size: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if vocab == 0 || dim == 0 || hash_size == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "one-hot hashing needs positive sizes, got v={vocab} e={dim} m={hash_size}"
                ),
            });
        }
        Ok(OneHotHashEncoder {
            kernel: init::glorot_uniform(hash_size, dim, rng),
            grad_kernel: Tensor::zeros(&[hash_size, dim]),
            param_id: ParamId::fresh(),
            vocab,
            dim,
            hash_size,
            seed: ONE_HOT_SEED,
            cached_ids: None,
        })
    }

    /// The hash bucket for `id`.
    pub fn bucket(&self, id: usize) -> usize {
        seeded_hash(id, self.hash_size, self.seed)
    }

    /// Materializes the `[ids.len(), hash_size]` one-hot matrix — the
    /// memory hog Table 3 measures.
    pub fn encode_one_hot(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let hashed: Vec<usize> = ids.iter().map(|&i| self.bucket(i)).collect();
        Ok(ops::one_hot(&hashed, self.hash_size))
    }
}

impl EmbeddingCompressor for OneHotHashEncoder {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        // Deliberate full one-hot × kernel matmul; see the type docs.
        let one_hot = self.encode_one_hot(ids)?;
        Ok(ops::matmul(&one_hot, &self.kernel)?)
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        // dK = one_hotᵀ · dy, accumulated densely (the kernel is dense).
        let one_hot = self.encode_one_hot(&ids)?;
        let dk = ops::matmul(&one_hot.transpose()?, grad_out)?;
        self.grad_kernel.axpy(1.0, &dk)?;
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        opt.step_dense(self.param_id, &mut self.kernel, &self.grad_kernel)?;
        self.grad_kernel.map_inplace(|_| 0.0);
        Ok(())
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        self.hash_size * self.dim
    }

    fn method_name(&self) -> &'static str {
        "weinberger_onehot"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![NamedTable {
            name: "kernel",
            tensor: &self.kernel,
        }]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![NamedTableMut {
            name: "kernel",
            tensor: &mut self.kernel,
        }]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make() -> OneHotHashEncoder {
        let mut rng = StdRng::seed_from_u64(0);
        OneHotHashEncoder::new(100, 4, 16, &mut rng).unwrap()
    }

    #[test]
    fn matmul_equals_row_selection() {
        // The one-hot matmul must produce exactly the hashed kernel row.
        let enc = make();
        let out = enc.lookup(&[42]).unwrap();
        let expect = enc.kernel.row(enc.bucket(42)).unwrap();
        assert_eq!(out.row(0).unwrap(), expect);
    }

    #[test]
    fn one_hot_has_single_one_per_row() {
        let enc = make();
        let oh = enc.encode_one_hot(&[1, 2, 3]).unwrap();
        for r in 0..3 {
            let row = oh.row(r).unwrap();
            assert_eq!(row.iter().filter(|&&x| x == 1.0).count(), 1);
            assert_eq!(row.iter().filter(|&&x| x == 0.0).count(), 15);
        }
    }

    #[test]
    fn gradient_flows_to_hashed_row() {
        let mut enc = make();
        let bucket = enc.bucket(7);
        let before = enc.kernel.row(bucket).unwrap().to_vec();
        enc.forward(&[7]).unwrap();
        enc.backward(&Tensor::ones(&[1, 4])).unwrap();
        let mut opt = memcom_nn::Sgd::new(0.1);
        enc.apply_gradients(&mut opt).unwrap();
        for (b, a) in before.iter().zip(enc.kernel.row(bucket).unwrap()) {
            assert!((a - (b - 0.1)).abs() < 1e-6);
        }
    }

    #[test]
    fn metadata() {
        let enc = make();
        assert_eq!(enc.param_count(), 64);
        assert_eq!(enc.method_name(), "weinberger_onehot");
        assert!(enc.lookup(&[100]).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(OneHotHashEncoder::new(0, 4, 16, &mut rng).is_err());
    }
}
