//! "Reduce embedding dim" baseline: a full table with a smaller `e`.

use memcom_nn::Optimizer;
use rand::Rng;

use crate::compressor::{EmbeddingCompressor, NamedTable, NamedTableMut};
use crate::full::FullEmbedding;
use crate::{CoreError, Result};

/// The simplest compression: keep one row per entity but shrink the row.
///
/// The surrounding network adapts to the smaller
/// [`output_dim`](EmbeddingCompressor::output_dim), exactly as the paper's "reduce
/// embedding dim" sweep progressively halves the dimension (256 → 128 → …
/// → 4). Implemented as a thin semantic wrapper over [`FullEmbedding`] so
/// experiment reports can distinguish the *technique* from the
/// uncompressed baseline it structurally resembles.
#[derive(Debug)]
pub struct ReducedDimEmbedding {
    inner: FullEmbedding,
    reference_dim: usize,
}

impl ReducedDimEmbedding {
    /// Creates a `vocab × reduced_dim` table; `reference_dim` is the
    /// uncompressed model's dimension the reduction is measured against.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when `reduced_dim` is zero or not
    /// actually smaller than `reference_dim`.
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        reduced_dim: usize,
        reference_dim: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if reduced_dim >= reference_dim {
            return Err(CoreError::BadConfig {
                context: format!(
                    "reduced dim {reduced_dim} must be smaller than the reference dim {reference_dim}"
                ),
            });
        }
        Ok(ReducedDimEmbedding {
            inner: FullEmbedding::new(vocab, reduced_dim, rng)?,
            reference_dim,
        })
    }

    /// The uncompressed dimension this reduction is measured against.
    pub fn reference_dim(&self) -> usize {
        self.reference_dim
    }
}

impl EmbeddingCompressor for ReducedDimEmbedding {
    fn lookup(&self, ids: &[usize]) -> Result<memcom_tensor::Tensor> {
        self.inner.lookup(ids)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        self.inner.embed_into(id, out)
    }

    fn forward(&mut self, ids: &[usize]) -> Result<memcom_tensor::Tensor> {
        self.inner.forward(ids)
    }

    fn backward(&mut self, grad_out: &memcom_tensor::Tensor) -> Result<()> {
        self.inner.backward(grad_out)
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.inner.apply_gradients(opt)
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn vocab_size(&self) -> usize {
        self.inner.vocab_size()
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    fn method_name(&self) -> &'static str {
        "reduce_dim"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        self.inner.tables()
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        self.inner.tables_mut()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn behaves_like_a_smaller_full_table() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = ReducedDimEmbedding::new(20, 4, 16, &mut rng).unwrap();
        assert_eq!(emb.output_dim(), 4);
        assert_eq!(emb.param_count(), 80);
        assert_eq!(emb.reference_dim(), 16);
        assert_eq!(emb.method_name(), "reduce_dim");
        let out = emb.lookup(&[0, 19]).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
        assert_ne!(out.row(0).unwrap(), out.row(1).unwrap());
    }

    #[test]
    fn rejects_non_reduction() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ReducedDimEmbedding::new(20, 16, 16, &mut rng).is_err());
        assert!(ReducedDimEmbedding::new(20, 0, 16, &mut rng).is_err());
    }

    #[test]
    fn compression_factor_vs_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = ReducedDimEmbedding::new(100, 8, 64, &mut rng).unwrap();
        let reference_params = 100 * 64;
        assert_eq!(reference_params / emb.param_count(), 8);
    }
}
