//! The [`EmbeddingCompressor`] trait and sparse-gradient plumbing.

use std::collections::HashMap;

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::Tensor;

use crate::{CoreError, Result};

/// A named view of one weight table inside a compressor, used by the
/// on-device serializer and the quantizer to enumerate storage.
#[derive(Debug)]
pub struct NamedTable<'a> {
    /// Stable table name (unique within one compressor).
    pub name: &'static str,
    /// The table contents.
    pub tensor: &'a Tensor,
}

/// Mutable variant of [`NamedTable`], used by post-training quantization
/// to rewrite weights in place.
#[derive(Debug)]
pub struct NamedTableMut<'a> {
    /// Stable table name (matches [`NamedTable::name`]).
    pub name: &'static str,
    /// The mutable table contents.
    pub tensor: &'a mut Tensor,
}

/// A compressed (or uncompressed) embedding layer: the common interface of
/// MEmCom and every baseline in the paper's evaluation.
///
/// Lifecycle per training step:
/// 1. [`forward`](EmbeddingCompressor::forward) with the batch's flat id
///    list (caller reshapes the `[n, e]` output to `[b, L, e]`),
/// 2. [`backward`](EmbeddingCompressor::backward) with the matching
///    `[n, e]` gradient,
/// 3. [`apply_gradients`](EmbeddingCompressor::apply_gradients) with the
///    shared optimizer — only rows touched in this batch are updated.
///
/// [`lookup`](EmbeddingCompressor::lookup) is the immutable inference path.
/// It takes `&self` and implementations hold no interior mutability, so a
/// trained compressor can be shared across threads — `Sync` is part of the
/// trait's contract so concurrent read paths (serving-side comparisons,
/// multi-threaded evaluation) can borrow one without wrappers.
pub trait EmbeddingCompressor: Send + Sync {
    /// Embeds `ids`, returning `[ids.len(), output_dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IdOutOfVocab`] for ids `>= vocab_size()`.
    fn lookup(&self, ids: &[usize]) -> Result<Tensor>;

    /// Writes the embedding row for one `id` into `out` without
    /// allocating. `out.len()` must equal
    /// [`output_dim`](Self::output_dim).
    ///
    /// This is the serving-side hot path: batch slabs reuse one flat
    /// buffer across calls, so per-row `Vec` construction would dominate
    /// the lookup itself. The default implementation delegates to the
    /// allocating [`lookup`](Self::lookup) path; every technique in this
    /// crate overrides it with a direct write.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IdOutOfVocab`] for `id >= vocab_size()` and
    /// [`CoreError::BadConfig`] when `out` has the wrong length.
    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_out(out.len(), self.output_dim())?;
        let row = self.lookup(std::slice::from_ref(&id))?;
        out.copy_from_slice(row.as_slice());
        Ok(())
    }

    /// Training-mode lookup: same as [`lookup`](Self::lookup) but caches
    /// `ids` for the subsequent [`backward`](Self::backward).
    ///
    /// # Errors
    ///
    /// Same conditions as [`lookup`](Self::lookup).
    fn forward(&mut self, ids: &[usize]) -> Result<Tensor>;

    /// Accumulates parameter gradients given `∂L/∂output` of shape
    /// `[ids.len(), output_dim]` from the last `forward`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BackwardBeforeForward`] without a prior
    /// `forward`, or [`CoreError::BadGradient`] on shape mismatch.
    fn backward(&mut self, grad_out: &Tensor) -> Result<()>;

    /// Applies and clears accumulated gradients through `opt`.
    ///
    /// # Errors
    ///
    /// Propagates optimizer shape errors (which indicate internal bugs).
    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()>;

    /// Dimensionality of each produced embedding vector.
    fn output_dim(&self) -> usize;

    /// Number of distinct input entities supported (`v` in the paper).
    fn vocab_size(&self) -> usize;

    /// Total trainable scalars in the embedding stage — the quantity the
    /// paper's compression ratios are computed from.
    fn param_count(&self) -> usize;

    /// Short technique name used in experiment output (e.g. `"memcom"`).
    fn method_name(&self) -> &'static str;

    /// Enumerates the weight tables for serialization/quantization.
    fn tables(&self) -> Vec<NamedTable<'_>>;

    /// Mutable access to the weight tables (post-training quantization
    /// rewrites weights through this).
    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>>;

    /// Upcast for downcasting to the concrete compressor type (used by
    /// audits and serialization round-trips).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable variant of [`EmbeddingCompressor::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Sparse per-row gradient accumulator shared by every compressor.
///
/// Gradients arrive row-by-row during `backward` (one row per looked-up
/// id); [`RowGrads::drain`] aggregates duplicates and emits the
/// `(rows, row_grads)` pair that [`Optimizer::step_sparse_rows`] consumes.
#[derive(Debug)]
pub struct RowGrads {
    cols: usize,
    acc: HashMap<usize, Vec<f32>>,
}

impl RowGrads {
    /// Creates an accumulator for rows of width `cols`.
    pub fn new(cols: usize) -> Self {
        RowGrads {
            cols,
            acc: HashMap::new(),
        }
    }

    /// Adds `grad` (length `cols`) into the accumulator for `row`.
    ///
    /// # Panics
    ///
    /// Panics when `grad.len() != cols` — compressors control both sides,
    /// so a mismatch is an internal bug.
    pub fn add(&mut self, row: usize, grad: &[f32]) {
        assert_eq!(grad.len(), self.cols, "row gradient width mismatch");
        let entry = self.acc.entry(row).or_insert_with(|| vec![0.0; self.cols]);
        for (a, &g) in entry.iter_mut().zip(grad) {
            *a += g;
        }
    }

    /// Adds a scalar gradient for width-1 tables (MEmCom multipliers).
    pub fn add_scalar(&mut self, row: usize, grad: f32) {
        self.add(row, &[grad]);
    }

    /// Whether any gradient has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Number of distinct rows with accumulated gradient.
    pub fn touched_rows(&self) -> usize {
        self.acc.len()
    }

    /// Drains the accumulator into `(rows, row_grads)` sorted by row id
    /// (sorting keeps optimizer application deterministic).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` covers tensor construction.
    pub fn drain(&mut self) -> Result<(Vec<usize>, Tensor)> {
        let mut rows: Vec<usize> = self.acc.keys().copied().collect();
        rows.sort_unstable();
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in &rows {
            data.extend_from_slice(&self.acc[&r]);
        }
        let grads = Tensor::from_vec(data, &[rows.len(), self.cols])?;
        self.acc.clear();
        Ok((rows, grads))
    }

    /// Applies the drained gradients to `table` through `opt` and clears.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors.
    pub fn apply(
        &mut self,
        opt: &mut dyn Optimizer,
        id: ParamId,
        table: &mut Tensor,
    ) -> Result<()> {
        if self.is_empty() {
            return Ok(());
        }
        let (rows, grads) = self.drain()?;
        opt.step_sparse_rows(id, table, &rows, &grads)
            .map_err(CoreError::from)
    }
}

/// Validates a gradient tensor against the cached id count and width.
pub(crate) fn check_grad(grad: &Tensor, n_ids: usize, cols: usize) -> Result<()> {
    if grad.shape().rank() != 2 || grad.shape().dims() != [n_ids, cols] {
        return Err(CoreError::BadGradient {
            context: format!("expected [{n_ids}, {cols}], got {}", grad.shape()),
        });
    }
    Ok(())
}

/// Validates ids against a vocabulary bound.
pub(crate) fn check_ids(ids: &[usize], vocab: usize) -> Result<()> {
    if let Some(&bad) = ids.iter().find(|&&i| i >= vocab) {
        return Err(CoreError::IdOutOfVocab { id: bad, vocab });
    }
    Ok(())
}

/// Validates an `embed_into` output buffer against the embedding dim.
pub(crate) fn check_out(out_len: usize, dim: usize) -> Result<()> {
    if out_len != dim {
        return Err(CoreError::BadConfig {
            context: format!("embed_into buffer holds {out_len} values, need {dim}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_nn::Sgd;

    #[test]
    fn row_grads_aggregate_duplicates() {
        let mut rg = RowGrads::new(2);
        rg.add(3, &[1.0, 1.0]);
        rg.add(1, &[0.5, 0.5]);
        rg.add(3, &[1.0, -1.0]);
        assert_eq!(rg.touched_rows(), 2);
        let (rows, grads) = rg.drain().unwrap();
        assert_eq!(rows, vec![1, 3]);
        assert_eq!(grads.row(0).unwrap(), &[0.5, 0.5]);
        assert_eq!(grads.row(1).unwrap(), &[2.0, 0.0]);
        assert!(rg.is_empty());
    }

    #[test]
    fn row_grads_apply_updates_table() {
        let mut rg = RowGrads::new(1);
        rg.add_scalar(0, 2.0);
        let mut table = Tensor::ones(&[3, 1]);
        let mut opt = Sgd::new(0.5);
        rg.apply(&mut opt, ParamId::fresh(), &mut table).unwrap();
        assert_eq!(table.as_slice(), &[0.0, 1.0, 1.0]);
        // Applying an empty accumulator is a no-op.
        rg.apply(&mut opt, ParamId::fresh(), &mut table).unwrap();
        assert_eq!(table.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_grads_width_checked() {
        let mut rg = RowGrads::new(2);
        rg.add(0, &[1.0]);
    }

    #[test]
    fn validators() {
        assert!(check_ids(&[0, 4], 5).is_ok());
        assert!(matches!(
            check_ids(&[5], 5),
            Err(CoreError::IdOutOfVocab { id: 5, vocab: 5 })
        ));
        assert!(check_grad(&Tensor::zeros(&[2, 3]), 2, 3).is_ok());
        assert!(check_grad(&Tensor::zeros(&[2, 3]), 3, 3).is_err());
        assert!(check_grad(&Tensor::zeros(&[6]), 2, 3).is_err());
    }
}
