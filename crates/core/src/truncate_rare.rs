//! "Truncate rare" baseline: drop unpopular entities entirely.

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::{CoreError, Result};

/// Keeps embeddings only for the `keep` most frequent entities; every rarer
/// id maps to a single shared out-of-vocabulary row. Because ids are
/// frequency-sorted (id order = popularity order), "keep the first `keep`
/// ids" is exactly the paper's "drop the less popular apps".
///
/// The paper found this "dumb" baseline surprisingly competitive on the
/// Arcade dataset — and MEmCom still beat it by 2x.
#[derive(Debug)]
pub struct TruncateRareEmbedding {
    /// Rows 0..keep are per-entity; row `keep` is the shared OOV row.
    table: Tensor,
    grads: RowGrads,
    param_id: ParamId,
    vocab: usize,
    dim: usize,
    keep: usize,
    cached_ids: Option<Vec<usize>>,
}

impl TruncateRareEmbedding {
    /// Creates a table keeping the `keep` most frequent entities.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes or `keep >= vocab`.
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        dim: usize,
        keep: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if vocab == 0 || dim == 0 || keep == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "truncate-rare needs positive sizes, got v={vocab} e={dim} keep={keep}"
                ),
            });
        }
        if keep >= vocab {
            return Err(CoreError::BadConfig {
                context: format!("keep {keep} must be smaller than vocabulary {vocab}"),
            });
        }
        Ok(TruncateRareEmbedding {
            table: init::embedding_uniform(&[keep + 1, dim], rng),
            grads: RowGrads::new(dim),
            param_id: ParamId::fresh(),
            vocab,
            dim,
            keep,
            cached_ids: None,
        })
    }

    /// Maps an entity id to its table row (`keep` = the OOV row).
    pub fn row_for(&self, id: usize) -> usize {
        if id < self.keep {
            id
        } else {
            self.keep
        }
    }

    /// Number of retained entities.
    pub fn kept(&self) -> usize {
        self.keep
    }
}

impl EmbeddingCompressor for TruncateRareEmbedding {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            data.extend_from_slice(self.table.row(self.row_for(id))?);
        }
        Ok(Tensor::from_vec(data, &[ids.len(), self.dim])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.vocab)?;
        check_out(out.len(), self.dim)?;
        out.copy_from_slice(self.table.row(self.row_for(id))?);
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        for (k, &id) in ids.iter().enumerate() {
            self.grads.add(self.row_for(id), grad_out.row(k)?);
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.grads.apply(opt, self.param_id, &mut self.table)
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        (self.keep + 1) * self.dim
    }

    fn method_name(&self) -> &'static str {
        "truncate_rare"
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![NamedTable {
            name: "kept",
            tensor: &self.table,
        }]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![NamedTableMut {
            name: "kept",
            tensor: &mut self.table,
        }]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make() -> TruncateRareEmbedding {
        let mut rng = StdRng::seed_from_u64(0);
        TruncateRareEmbedding::new(100, 4, 10, &mut rng).unwrap()
    }

    #[test]
    fn popular_ids_keep_identity() {
        let emb = make();
        let out = emb.lookup(&[3, 7]).unwrap();
        assert_ne!(out.row(0).unwrap(), out.row(1).unwrap());
        assert_eq!(out.row(0).unwrap(), emb.table.row(3).unwrap());
    }

    #[test]
    fn rare_ids_collapse_to_oov() {
        let emb = make();
        let out = emb.lookup(&[10, 55, 99]).unwrap();
        assert_eq!(out.row(0).unwrap(), out.row(1).unwrap());
        assert_eq!(out.row(1).unwrap(), out.row(2).unwrap());
        assert_eq!(out.row(0).unwrap(), emb.table.row(10).unwrap()); // OOV row index = keep
    }

    #[test]
    fn oov_row_receives_all_rare_gradients() {
        let mut emb = make();
        let before = emb.table.row(10).unwrap().to_vec();
        emb.forward(&[50, 60, 70]).unwrap();
        emb.backward(&Tensor::ones(&[3, 4])).unwrap();
        let mut opt = memcom_nn::Sgd::new(0.1);
        emb.apply_gradients(&mut opt).unwrap();
        for (b, a) in before.iter().zip(emb.table.row(10).unwrap()) {
            assert!((a - (b - 0.3)).abs() < 1e-6);
        }
    }

    #[test]
    fn metadata_and_validation() {
        assert_eq!(make().param_count(), 11 * 4);
        assert_eq!(make().kept(), 10);
        assert_eq!(make().method_name(), "truncate_rare");
        let mut rng = StdRng::seed_from_u64(0);
        assert!(TruncateRareEmbedding::new(10, 4, 10, &mut rng).is_err());
        assert!(TruncateRareEmbedding::new(10, 4, 0, &mut rng).is_err());
    }
}
