//! Deterministic hash functions used by the hashing-based compressors.
//!
//! The paper's techniques need two kinds of index mapping:
//!
//! * the plain modulo `i mod m` ("naive hashing", MEmCom's `U` index, the
//!   remainder part of quotient–remainder), and
//! * independent seeded hash functions for double hashing, where the whole
//!   point (Zhang et al., 2020) is that two *different* functions collide
//!   on different id pairs.
//!
//! The seeded function is a SplitMix64 finalizer — a measured-good avalanche
//! mixer that is trivially reproducible across platforms, keeping every
//! experiment deterministic from its seed.

/// Plain modulo bucketing, `i mod m`.
///
/// With frequency-sorted ids (the paper sorts ids by frequency, Algorithm
/// 2), the `m` most popular entities land in distinct buckets — a property
/// several experiments rely on.
///
/// # Panics
///
/// Panics if `m == 0` — a configuration bug, not a data condition.
#[inline]
pub fn mod_hash(id: usize, m: usize) -> usize {
    assert!(m > 0, "hash size must be positive");
    id % m
}

/// A seeded universal-style hash onto `[0, m)`.
///
/// Distinct seeds give (empirically) independent bucketings, which is what
/// double hashing requires.
///
/// # Panics
///
/// Panics if `m == 0`.
#[inline]
pub fn seeded_hash(id: usize, m: usize, seed: u64) -> usize {
    assert!(m > 0, "hash size must be positive");
    (splitmix64((id as u64).wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))) % m as u64)
        as usize
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn mod_hash_basics() {
        assert_eq!(mod_hash(0, 10), 0);
        assert_eq!(mod_hash(25, 10), 5);
        assert_eq!(mod_hash(9, 10), 9);
    }

    #[test]
    #[should_panic(expected = "hash size")]
    fn mod_hash_zero_m_panics() {
        let _ = mod_hash(1, 0);
    }

    #[test]
    fn mod_hash_head_ids_unique() {
        // Frequency-sorted property: ids 0..m land in distinct buckets.
        let m = 100;
        let buckets: HashSet<usize> = (0..m).map(|i| mod_hash(i, m)).collect();
        assert_eq!(buckets.len(), m);
    }

    #[test]
    fn seeded_hash_in_range_and_deterministic() {
        for id in 0..1000 {
            let h = seeded_hash(id, 37, 12345);
            assert!(h < 37);
            assert_eq!(h, seeded_hash(id, 37, 12345));
        }
    }

    #[test]
    fn different_seeds_give_different_bucketings() {
        let m = 64;
        let a: Vec<usize> = (0..10_000).map(|i| seeded_hash(i, m, 1)).collect();
        let b: Vec<usize> = (0..10_000).map(|i| seeded_hash(i, m, 2)).collect();
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        // Independent hashing agrees with probability ≈ 1/m.
        let expect = 10_000.0 / m as f64;
        assert!(
            (agree as f64) < expect * 2.0,
            "seeds too correlated: {agree} agreements vs expected {expect}"
        );
    }

    #[test]
    fn seeded_hash_spreads_uniformly() {
        let m = 16;
        let mut counts = vec![0usize; m];
        for id in 0..16_000 {
            counts[seeded_hash(id, m, 99)] += 1;
        }
        // Each bucket should hold ~1000; allow ±20%.
        for (b, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {b} has {c}");
        }
    }

    #[test]
    fn splitmix64_known_vector() {
        // Reference value from the SplitMix64 definition (seed 0 → first output).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    proptest! {
        #[test]
        fn prop_hashes_in_range(id in 0usize..1_000_000, m in 1usize..10_000, seed in 0u64..100) {
            prop_assert!(mod_hash(id, m) < m);
            prop_assert!(seeded_hash(id, m, seed) < m);
        }

        #[test]
        fn prop_mod_hash_periodic(id in 0usize..100_000, m in 1usize..1000) {
            prop_assert_eq!(mod_hash(id, m), mod_hash(id + m, m));
        }
    }
}
