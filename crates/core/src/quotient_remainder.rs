//! Quotient–remainder trick (Shi et al., 2019; Algorithm 1 of the paper).

use memcom_nn::{Optimizer, ParamId};
use memcom_tensor::{init, Tensor};
use rand::Rng;

use crate::compressor::{
    check_grad, check_ids, check_out, EmbeddingCompressor, NamedTable, NamedTableMut, RowGrads,
};
use crate::{CoreError, Result};

/// How the remainder and quotient embeddings are composed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QrCombiner {
    /// Elementwise multiplication `U[i mod m] ⊙ V[i \ m]` — Algorithm 1 as
    /// published.
    Multiply,
    /// Concatenation of two `e/2` halves — the variant the paper also
    /// benchmarks ("one where the compositional operator is concatenation").
    Concat,
}

/// Quotient–remainder compositional embedding: the id is decomposed as
/// `i = q·m + r`, the remainder indexes `U ∈ ℝ^{m×e'}`, the quotient
/// indexes `V ∈ ℝ^{⌈v/m⌉×e'}`, and the two are combined. The pair `(q, r)`
/// is unique per id, so every entity gets a distinct (but *constrained*)
/// embedding function.
#[derive(Debug)]
pub struct QuotientRemainder {
    remainder_table: Tensor,
    quotient_table: Tensor,
    grads_rem: RowGrads,
    grads_quo: RowGrads,
    id_rem: ParamId,
    id_quo: ParamId,
    combiner: QrCombiner,
    vocab: usize,
    dim: usize,
    part_dim: usize,
    m: usize,
    quotient_rows: usize,
    cached_ids: Option<Vec<usize>>,
}

impl QuotientRemainder {
    /// Creates the two tables for vocabulary `vocab`, output dim `dim`, and
    /// remainder-table size `m`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for zero sizes, `m > vocab`, or an
    /// odd `dim` with [`QrCombiner::Concat`].
    pub fn new<R: Rng + ?Sized>(
        vocab: usize,
        dim: usize,
        m: usize,
        combiner: QrCombiner,
        rng: &mut R,
    ) -> Result<Self> {
        if vocab == 0 || dim == 0 || m == 0 {
            return Err(CoreError::BadConfig {
                context: format!(
                    "quotient-remainder needs positive sizes, got v={vocab} e={dim} m={m}"
                ),
            });
        }
        if m > vocab {
            return Err(CoreError::BadConfig {
                context: format!("remainder size {m} exceeds vocabulary {vocab}"),
            });
        }
        let part_dim = match combiner {
            QrCombiner::Multiply => dim,
            QrCombiner::Concat => {
                if !dim.is_multiple_of(2) {
                    return Err(CoreError::BadConfig {
                        context: format!("concat combiner requires even dim, got {dim}"),
                    });
                }
                dim / 2
            }
        };
        let quotient_rows = vocab.div_ceil(m);
        Ok(QuotientRemainder {
            remainder_table: init::embedding_uniform(&[m, part_dim], rng),
            // Multiplicative composition wants the quotient side near 1 so
            // the product starts at embedding scale (ALBERT-style init
            // would start products at ~1e-3, stalling training).
            quotient_table: match combiner {
                QrCombiner::Multiply => {
                    let mut t = Tensor::rand_uniform(&[quotient_rows, part_dim], -0.05, 0.05, rng);
                    t.map_inplace(|x| 1.0 + x);
                    t
                }
                QrCombiner::Concat => init::embedding_uniform(&[quotient_rows, part_dim], rng),
            },
            grads_rem: RowGrads::new(part_dim),
            grads_quo: RowGrads::new(part_dim),
            id_rem: ParamId::fresh(),
            id_quo: ParamId::fresh(),
            combiner,
            vocab,
            dim,
            part_dim,
            m,
            quotient_rows,
            cached_ids: None,
        })
    }

    /// Decomposes an id into `(quotient, remainder)`.
    pub fn decompose(&self, id: usize) -> (usize, usize) {
        (id / self.m, id % self.m)
    }

    /// The configured combiner.
    pub fn combiner(&self) -> QrCombiner {
        self.combiner
    }
}

impl EmbeddingCompressor for QuotientRemainder {
    fn lookup(&self, ids: &[usize]) -> Result<Tensor> {
        check_ids(ids, self.vocab)?;
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            let (q, r) = self.decompose(id);
            let rem = self.remainder_table.row(r)?;
            let quo = self.quotient_table.row(q)?;
            match self.combiner {
                QrCombiner::Multiply => {
                    data.extend(rem.iter().zip(quo).map(|(&a, &b)| a * b));
                }
                QrCombiner::Concat => {
                    data.extend_from_slice(rem);
                    data.extend_from_slice(quo);
                }
            }
        }
        Ok(Tensor::from_vec(data, &[ids.len(), self.dim])?)
    }

    fn embed_into(&self, id: usize, out: &mut [f32]) -> Result<()> {
        check_ids(std::slice::from_ref(&id), self.vocab)?;
        check_out(out.len(), self.dim)?;
        let (q, r) = self.decompose(id);
        let rem = self.remainder_table.row(r)?;
        let quo = self.quotient_table.row(q)?;
        match self.combiner {
            QrCombiner::Multiply => {
                for (o, (&a, &b)) in out.iter_mut().zip(rem.iter().zip(quo)) {
                    *o = a * b;
                }
            }
            QrCombiner::Concat => {
                out[..self.part_dim].copy_from_slice(rem);
                out[self.part_dim..].copy_from_slice(quo);
            }
        }
        Ok(())
    }

    fn forward(&mut self, ids: &[usize]) -> Result<Tensor> {
        let out = self.lookup(ids)?;
        self.cached_ids = Some(ids.to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self
            .cached_ids
            .take()
            .ok_or(CoreError::BackwardBeforeForward)?;
        check_grad(grad_out, ids.len(), self.dim)?;
        for (k, &id) in ids.iter().enumerate() {
            let (q, r) = self.decompose(id);
            let g = grad_out.row(k)?;
            match self.combiner {
                QrCombiner::Multiply => {
                    let rem = self.remainder_table.row(r)?;
                    let quo = self.quotient_table.row(q)?;
                    // d/dU = g ⊙ V, d/dV = g ⊙ U (product rule per element).
                    let du: Vec<f32> = g.iter().zip(quo).map(|(&a, &b)| a * b).collect();
                    let dv: Vec<f32> = g.iter().zip(rem).map(|(&a, &b)| a * b).collect();
                    self.grads_rem.add(r, &du);
                    self.grads_quo.add(q, &dv);
                }
                QrCombiner::Concat => {
                    self.grads_rem.add(r, &g[..self.part_dim]);
                    self.grads_quo.add(q, &g[self.part_dim..]);
                }
            }
        }
        Ok(())
    }

    fn apply_gradients(&mut self, opt: &mut dyn Optimizer) -> Result<()> {
        self.grads_rem
            .apply(opt, self.id_rem, &mut self.remainder_table)?;
        self.grads_quo
            .apply(opt, self.id_quo, &mut self.quotient_table)
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn param_count(&self) -> usize {
        (self.m + self.quotient_rows) * self.part_dim
    }

    fn method_name(&self) -> &'static str {
        match self.combiner {
            QrCombiner::Multiply => "qr_mult",
            QrCombiner::Concat => "qr_concat",
        }
    }

    fn tables(&self) -> Vec<NamedTable<'_>> {
        vec![
            NamedTable {
                name: "remainder",
                tensor: &self.remainder_table,
            },
            NamedTable {
                name: "quotient",
                tensor: &self.quotient_table,
            },
        ]
    }

    fn tables_mut(&mut self) -> Vec<NamedTableMut<'_>> {
        vec![
            NamedTableMut {
                name: "remainder",
                tensor: &mut self.remainder_table,
            },
            NamedTableMut {
                name: "quotient",
                tensor: &mut self.quotient_table,
            },
        ]
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn make(combiner: QrCombiner) -> QuotientRemainder {
        let mut rng = StdRng::seed_from_u64(0);
        QuotientRemainder::new(100, 8, 10, combiner, &mut rng).unwrap()
    }

    #[test]
    fn decomposition_unique_per_id() {
        let qr = make(QrCombiner::Multiply);
        let codes: HashSet<(usize, usize)> = (0..100).map(|i| qr.decompose(i)).collect();
        assert_eq!(codes.len(), 100); // every id gets a unique (q, r) pair
    }

    #[test]
    fn multiply_composition_matches_tables() {
        let qr = make(QrCombiner::Multiply);
        let out = qr.lookup(&[37]).unwrap();
        let (q, r) = qr.decompose(37);
        let rem = qr.remainder_table.row(r).unwrap();
        let quo = qr.quotient_table.row(q).unwrap();
        for ((o, &a), &b) in out.row(0).unwrap().iter().zip(rem).zip(quo) {
            assert!((o - a * b).abs() < 1e-6);
        }
    }

    #[test]
    fn concat_composition_matches_tables() {
        let qr = make(QrCombiner::Concat);
        let out = qr.lookup(&[37]).unwrap();
        let (q, r) = qr.decompose(37);
        assert_eq!(
            &out.row(0).unwrap()[..4],
            qr.remainder_table.row(r).unwrap()
        );
        assert_eq!(&out.row(0).unwrap()[4..], qr.quotient_table.row(q).unwrap());
    }

    #[test]
    fn all_ids_have_distinct_embeddings() {
        // Property 1 of §4: QR supports a unique vector per category.
        let qr = make(QrCombiner::Multiply);
        let ids: Vec<usize> = (0..100).collect();
        let out = qr.lookup(&ids).unwrap();
        let mut seen: Vec<Vec<u32>> = Vec::new();
        for i in 0..100 {
            let bits: Vec<u32> = out.row(i).unwrap().iter().map(|f| f.to_bits()).collect();
            assert!(!seen.contains(&bits), "id {i} duplicated an embedding");
            seen.push(bits);
        }
    }

    #[test]
    fn multiply_gradients_product_rule() {
        let mut qr = make(QrCombiner::Multiply);
        let ids = [37usize];
        qr.forward(&ids).unwrap();
        let g = Tensor::ones(&[1, 8]);
        let (q, r) = qr.decompose(37);
        let rem_before = qr.remainder_table.row(r).unwrap().to_vec();
        let quo_before = qr.quotient_table.row(q).unwrap().to_vec();
        qr.backward(&g).unwrap();
        let mut opt = memcom_nn::Sgd::new(1.0);
        qr.apply_gradients(&mut opt).unwrap();
        for i in 0..8 {
            let want_rem = rem_before[i] - quo_before[i];
            let want_quo = quo_before[i] - rem_before[i];
            assert!((qr.remainder_table.row(r).unwrap()[i] - want_rem).abs() < 1e-6);
            assert!((qr.quotient_table.row(q).unwrap()[i] - want_quo).abs() < 1e-6);
        }
    }

    #[test]
    fn param_counts() {
        // m=10 rows + ceil(100/10)=10 rows, dims 8 (mult) vs 4 (concat).
        assert_eq!(make(QrCombiner::Multiply).param_count(), 20 * 8);
        assert_eq!(make(QrCombiner::Concat).param_count(), 20 * 4);
        assert_eq!(make(QrCombiner::Multiply).method_name(), "qr_mult");
        assert_eq!(make(QrCombiner::Concat).method_name(), "qr_concat");
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(QuotientRemainder::new(10, 7, 2, QrCombiner::Concat, &mut rng).is_err());
        assert!(QuotientRemainder::new(10, 8, 11, QrCombiner::Multiply, &mut rng).is_err());
        assert!(QuotientRemainder::new(0, 8, 1, QrCombiner::Multiply, &mut rng).is_err());
        let qr = make(QrCombiner::Multiply);
        assert!(qr.lookup(&[100]).is_err());
    }

    #[test]
    fn uneven_vocab_rounds_quotient_rows_up() {
        let mut rng = StdRng::seed_from_u64(0);
        let qr = QuotientRemainder::new(101, 8, 10, QrCombiner::Multiply, &mut rng).unwrap();
        // id 100 → q=10 requires an 11th quotient row.
        assert!(qr.lookup(&[100]).is_ok());
        assert_eq!(qr.param_count(), (10 + 11) * 8);
    }
}
