//! Error type for model construction and training.

use std::error::Error;
use std::fmt;

use memcom_core::CoreError;
use memcom_data::DataError;
use memcom_nn::NnError;
use memcom_tensor::TensorError;

/// Errors produced while building, training, or evaluating models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying layer/optimizer operation failed.
    Nn(NnError),
    /// An embedding compressor operation failed.
    Core(CoreError),
    /// Dataset generation failed.
    Data(DataError),
    /// A model or training configuration is invalid.
    BadConfig {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            ModelError::Nn(e) => write!(f, "nn operation failed: {e}"),
            ModelError::Core(e) => write!(f, "embedding operation failed: {e}"),
            ModelError::Data(e) => write!(f, "data generation failed: {e}"),
            ModelError::BadConfig { context } => write!(f, "bad model config: {context}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Nn(e) => Some(e),
            ModelError::Core(e) => Some(e),
            ModelError::Data(e) => Some(e),
            ModelError::BadConfig { .. } => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<NnError> for ModelError {
    fn from(e: NnError) -> Self {
        ModelError::Nn(e)
    }
}

impl From<CoreError> for ModelError {
    fn from(e: CoreError) -> Self {
        ModelError::Core(e)
    }
}

impl From<DataError> for ModelError {
    fn from(e: DataError) -> Self {
        ModelError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        assert!(Error::source(&ModelError::from(TensorError::EmptyTensor)).is_some());
        assert!(Error::source(&ModelError::from(DataError::EmptySupport)).is_some());
        assert!(Error::source(&ModelError::BadConfig {
            context: "x".into()
        })
        .is_none());
        assert!(ModelError::BadConfig {
            context: "bad lr".into()
        }
        .to_string()
        .contains("bad lr"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
