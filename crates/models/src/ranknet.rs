//! Pairwise RankNet ranking (§5.2, Arcade / Figure 3).
//!
//! The paper's pairwise model is a siamese arrangement of the shared
//! pointwise network: it "takes as input user features and two item IDs
//! ... outputs two scores corresponding to the input item ids", and
//! training maximizes the score difference. Here the shared network is the
//! pointwise [`RecModel`]; an item's score is its logit, and the RankNet
//! loss (Burges et al., 2005) flows back only through the two scored
//! logits.

use memcom_core::MethodSpec;
use memcom_data::PairExample;
use memcom_metrics::{pairwise_accuracy, rank_of, single_relevant_ndcg};
use memcom_nn::{ranknet_loss, Mode, Optimizer};
use memcom_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::network::{ModelConfig, ModelKind, RecModel};
use crate::trainer::{make_optimizer, TrainConfig};
use crate::{ModelError, Result};

/// The siamese pairwise ranker.
#[derive(Debug)]
pub struct RankNet {
    shared: RecModel,
}

/// Outcome of a RankNet training run. Quality numbers are best-checkpoint
/// (evaluated after every epoch), matching [`crate::trainer::TrainReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankNetReport {
    /// Mean pairwise loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Best per-epoch fraction of eval pairs ranked correctly.
    pub pair_accuracy: f64,
    /// Best per-epoch mean nDCG of the preferred item.
    pub eval_ndcg: f64,
}

impl RankNet {
    /// Builds the shared tower. The tower is always the pointwise variant
    /// (the paper's pairwise experiments reuse it).
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn new(config: &ModelConfig, spec: &MethodSpec) -> Result<Self> {
        let config = ModelConfig {
            kind: ModelKind::PointwiseRanker,
            ..config.clone()
        };
        Ok(RankNet {
            shared: RecModel::new(&config, spec)?,
        })
    }

    /// The shared tower (for parameter accounting and serialization).
    pub fn shared_model(&mut self) -> &mut RecModel {
        &mut self.shared
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.shared.param_count()
    }

    /// One training step over a slice of pair examples. Returns the mean
    /// pair loss.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward failures; rejects empty batches.
    pub fn train_step(&mut self, pairs: &[PairExample], opt: &mut dyn Optimizer) -> Result<f32> {
        if pairs.is_empty() {
            return Err(ModelError::BadConfig {
                context: "empty pair batch".into(),
            });
        }
        let b = pairs.len();
        let l = self.shared.config().input_len;
        let n_classes = self.shared.config().n_classes;
        let mut flat_ids = Vec::with_capacity(b * l);
        for p in pairs {
            flat_ids.extend_from_slice(&p.input_ids);
        }
        let logits = self.shared.forward(&flat_ids, b, Mode::Train)?;
        // Extract the two scores per pair.
        let mut pos = Vec::with_capacity(b);
        let mut neg = Vec::with_capacity(b);
        for (row, p) in pairs.iter().enumerate() {
            pos.push(logits.as_slice()[row * n_classes + p.preferred]);
            neg.push(logits.as_slice()[row * n_classes + p.other]);
        }
        let (loss, grad_pos, grad_neg) =
            ranknet_loss(&Tensor::from_vec(pos, &[b])?, &Tensor::from_vec(neg, &[b])?)?;
        // Scatter pair gradients back into the logit matrix.
        let mut grad_logits = Tensor::zeros(&[b, n_classes]);
        {
            let g = grad_logits.as_mut_slice();
            for (row, p) in pairs.iter().enumerate() {
                g[row * n_classes + p.preferred] += grad_pos.as_slice()[row];
                g[row * n_classes + p.other] += grad_neg.as_slice()[row];
            }
        }
        self.shared.backward_and_step(&grad_logits, b, opt)?;
        Ok(loss)
    }

    /// Full training loop over pair examples.
    ///
    /// # Errors
    ///
    /// Propagates training-step failures.
    pub fn train(
        &mut self,
        train_pairs: &[PairExample],
        eval_pairs: &[PairExample],
        config: &TrainConfig,
    ) -> Result<RankNetReport> {
        let mut opt = make_optimizer(config);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..train_pairs.len()).collect();
        let mut epoch_losses = Vec::with_capacity(config.epochs);
        let mut best_pair_accuracy = 0f64;
        let mut best_ndcg = 0f64;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut total = 0f64;
            let mut steps = 0usize;
            for chunk in order.chunks(config.batch_size) {
                let batch: Vec<PairExample> =
                    chunk.iter().map(|&i| train_pairs[i].clone()).collect();
                total += self.train_step(&batch, opt.as_mut())? as f64;
                steps += 1;
            }
            epoch_losses.push(if steps == 0 {
                0.0
            } else {
                (total / steps as f64) as f32
            });
            let (acc, ndcg) = self.evaluate(eval_pairs, config.batch_size)?;
            best_pair_accuracy = best_pair_accuracy.max(acc);
            best_ndcg = best_ndcg.max(ndcg);
        }
        Ok(RankNetReport {
            epoch_losses,
            pair_accuracy: best_pair_accuracy,
            eval_ndcg: best_ndcg,
        })
    }

    /// Evaluates pairwise accuracy and preferred-item nDCG.
    ///
    /// # Errors
    ///
    /// Propagates forward failures; rejects empty eval sets.
    pub fn evaluate(&mut self, pairs: &[PairExample], batch_size: usize) -> Result<(f64, f64)> {
        if pairs.is_empty() {
            return Err(ModelError::BadConfig {
                context: "empty eval pair set".into(),
            });
        }
        let l = self.shared.config().input_len;
        let n_classes = self.shared.config().n_classes;
        let mut pos_scores = Vec::with_capacity(pairs.len());
        let mut neg_scores = Vec::with_capacity(pairs.len());
        let mut ndcg_sum = 0f64;
        for chunk in pairs.chunks(batch_size.max(1)) {
            let b = chunk.len();
            let mut flat_ids = Vec::with_capacity(b * l);
            for p in chunk {
                flat_ids.extend_from_slice(&p.input_ids);
            }
            let logits = self.shared.infer(&flat_ids, b)?;
            for (row, p) in chunk.iter().enumerate() {
                let row_slice = &logits.as_slice()[row * n_classes..(row + 1) * n_classes];
                pos_scores.push(row_slice[p.preferred]);
                neg_scores.push(row_slice[p.other]);
                ndcg_sum += single_relevant_ndcg(rank_of(row_slice, p.preferred));
            }
        }
        Ok((
            pairwise_accuracy(&pos_scores, &neg_scores),
            ndcg_sum / pairs.len() as f64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_data::DatasetSpec;

    fn tiny_pairs() -> (DatasetSpec, Vec<PairExample>, Vec<PairExample>) {
        let mut spec = DatasetSpec::arcade().scaled(1_000_000);
        spec.train_samples = 500;
        spec.eval_samples = 150;
        spec.input_len = 16;
        let (train, eval) = spec.try_generate_pairs(5).unwrap();
        (spec, train, eval)
    }

    #[test]
    fn ranknet_learns_to_order_pairs() {
        let (spec, train_pairs, eval_pairs) = tiny_pairs();
        let config = ModelConfig {
            kind: ModelKind::PointwiseRanker,
            vocab: spec.input_vocab(),
            embedding_dim: 16,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.05,
            seed: 6,
        };
        let mut net = RankNet::new(&config, &MethodSpec::Uncompressed).unwrap();
        let report = net
            .train(
                &train_pairs,
                &eval_pairs,
                &TrainConfig {
                    epochs: 5,
                    batch_size: 32,
                    lr: 3e-3,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(
            report.pair_accuracy > 0.6,
            "pairwise accuracy {} barely above chance",
            report.pair_accuracy
        );
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
        assert!(report.eval_ndcg > 0.2);
    }

    #[test]
    fn empty_batches_rejected() {
        let (spec, _, eval_pairs) = tiny_pairs();
        let config = ModelConfig {
            kind: ModelKind::PointwiseRanker,
            vocab: spec.input_vocab(),
            embedding_dim: 8,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.0,
            seed: 6,
        };
        let mut net = RankNet::new(&config, &MethodSpec::Uncompressed).unwrap();
        let mut opt = memcom_nn::Sgd::new(0.1);
        assert!(net.train_step(&[], &mut opt).is_err());
        assert!(net.evaluate(&[], 8).is_err());
        // Evaluate works untrained.
        let (acc, ndcg) = net.evaluate(&eval_pairs, 32).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!((0.0..=1.0).contains(&ndcg));
    }

    #[test]
    fn tower_is_always_pointwise() {
        let (spec, _, _) = tiny_pairs();
        // Even if the caller asks for a classifier tower, RankNet builds
        // the pointwise variant (5 head layers, not 9).
        let config = ModelConfig {
            kind: ModelKind::Classifier,
            vocab: spec.input_vocab(),
            embedding_dim: 8,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.0,
            seed: 6,
        };
        let mut net = RankNet::new(&config, &MethodSpec::Uncompressed).unwrap();
        assert_eq!(net.shared_model().head().len(), 5);
    }
}
