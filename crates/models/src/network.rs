//! The paper's embedding-based feed-forward networks (Code 1).

use memcom_core::{EmbeddingCompressor, MethodSpec};
use memcom_nn::{
    AveragePool1d, BatchNorm1d, Dense, Dropout, Layer, Mode, Optimizer, Relu, Sequential,
};
use memcom_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ModelError, Result};

/// Which of the paper's two feed-forward variants to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// §5.1 / Code 1: pool → ReLU → dropout → batch-norm →
    /// Dense(e/2, ReLU) → dropout → batch-norm → Dense(classes).
    Classifier,
    /// §5.2: the same network "removing the Dense layer following the
    /// Average Pooling": pool → ReLU → dropout → batch-norm →
    /// Dense(classes).
    PointwiseRanker,
}

/// Model hyperparameters shared across experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Which network variant to build.
    pub kind: ModelKind,
    /// Input vocabulary size (`v`).
    pub vocab: usize,
    /// Reference embedding dimension (`e`; 256 in the paper, smaller in
    /// scaled runs).
    pub embedding_dim: usize,
    /// Fixed input sequence length (128 in the paper).
    pub input_len: usize,
    /// Output vocabulary / class count.
    pub n_classes: usize,
    /// Dropout rate (Code 1 leaves it a hyperparameter; 0.1 default).
    pub dropout: f32,
    /// RNG seed for weight initialization and dropout masks.
    pub seed: u64,
}

impl ModelConfig {
    /// A classifier configuration with library defaults.
    pub fn classifier(
        vocab: usize,
        embedding_dim: usize,
        input_len: usize,
        n_classes: usize,
    ) -> Self {
        ModelConfig {
            kind: ModelKind::Classifier,
            vocab,
            embedding_dim,
            input_len,
            n_classes,
            dropout: 0.1,
            seed: 0,
        }
    }

    /// A pointwise-ranker configuration with library defaults.
    pub fn pointwise(
        vocab: usize,
        embedding_dim: usize,
        input_len: usize,
        n_classes: usize,
    ) -> Self {
        ModelConfig {
            kind: ModelKind::PointwiseRanker,
            ..Self::classifier(vocab, embedding_dim, input_len, n_classes)
        }
    }
}

/// An embedding compressor plus the Code-1 head, with train/eval plumbing.
///
/// # Example
///
/// ```
/// use memcom_core::MethodSpec;
/// use memcom_models::{ModelConfig, RecModel};
///
/// # fn main() -> Result<(), memcom_models::ModelError> {
/// let config = ModelConfig::classifier(1_000, 16, 8, 10);
/// let mut model = RecModel::new(&config, &MethodSpec::MemCom { hash_size: 100, bias: true })?;
/// let logits = model.infer(&vec![1usize; 16], 2)?; // batch of 2
/// assert_eq!(logits.shape().dims(), &[2, 10]);
/// # Ok(())
/// # }
/// ```
pub struct RecModel {
    embedding: Box<dyn EmbeddingCompressor>,
    head: Sequential,
    config: ModelConfig,
}

impl std::fmt::Debug for RecModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecModel")
            .field("method", &self.embedding.method_name())
            .field("kind", &self.config.kind)
            .field("head", &self.head)
            .finish()
    }
}

impl RecModel {
    /// Builds the model with the embedding stage described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] for inconsistent dimensions and
    /// propagates compressor construction failures.
    pub fn new(config: &ModelConfig, spec: &MethodSpec) -> Result<Self> {
        if config.input_len == 0 || config.n_classes == 0 || config.embedding_dim == 0 {
            return Err(ModelError::BadConfig {
                context: format!(
                    "model needs positive dims, got len={} classes={} e={}",
                    config.input_len, config.n_classes, config.embedding_dim
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embedding = spec.build(config.vocab, config.embedding_dim, &mut rng)?;
        // ReduceDim shrinks the working dimension; everything downstream
        // adapts to the embedding's actual output width.
        let e_out = embedding.output_dim();
        let mut head = Sequential::new();
        head.push(AveragePool1d::new());
        head.push(Relu::new());
        head.push(Dropout::new(config.dropout, config.seed ^ 0xD0));
        head.push(BatchNorm1d::with_hyper(e_out, 0.9, 1e-3));
        match config.kind {
            ModelKind::Classifier => {
                let hidden = (e_out / 2).max(1);
                head.push(Dense::new(e_out, hidden, &mut rng));
                head.push(Relu::new());
                head.push(Dropout::new(config.dropout, config.seed ^ 0xD1));
                head.push(BatchNorm1d::with_hyper(hidden, 0.9, 1e-3));
                head.push(Dense::new(hidden, config.n_classes, &mut rng));
            }
            ModelKind::PointwiseRanker => {
                head.push(Dense::new(e_out, config.n_classes, &mut rng));
            }
        }
        Ok(RecModel {
            embedding,
            head,
            config: config.clone(),
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The embedding stage (for audits, serialization, quantization).
    pub fn embedding(&self) -> &dyn EmbeddingCompressor {
        self.embedding.as_ref()
    }

    /// Mutable access to the head (for serialization round-trips).
    pub fn head_mut(&mut self) -> &mut Sequential {
        &mut self.head
    }

    /// Immutable access to the head layers.
    pub fn head(&self) -> &Sequential {
        &self.head
    }

    /// Total trainable parameters (embedding + head) — the denominator of
    /// the paper's whole-model compression ratios.
    pub fn param_count(&mut self) -> usize {
        self.embedding.param_count() + self.head.param_count()
    }

    /// Runs the network over a flat id buffer of `batch · input_len` ids,
    /// returning `[batch, n_classes]` logits.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] when the buffer length is not
    /// `batch · input_len`, and propagates lookup failures.
    pub fn forward(&mut self, flat_ids: &[usize], batch: usize, mode: Mode) -> Result<Tensor> {
        let l = self.config.input_len;
        if flat_ids.len() != batch * l {
            return Err(ModelError::BadConfig {
                context: format!(
                    "expected {} ids for batch {batch}, got {}",
                    batch * l,
                    flat_ids.len()
                ),
            });
        }
        let flat = self.embedding.forward(flat_ids)?; // [b·L, e]
        let seq = flat.reshape(&[batch, l, self.embedding.output_dim()])?;
        Ok(self.head.forward(&seq, mode)?)
    }

    /// Inference-mode forward pass (no caches, dropout off, batch-norm in
    /// moving-average mode).
    ///
    /// # Errors
    ///
    /// Same as [`forward`](Self::forward).
    pub fn infer(&mut self, flat_ids: &[usize], batch: usize) -> Result<Tensor> {
        self.forward(flat_ids, batch, Mode::Eval)
    }

    /// Back-propagates `∂L/∂logits` and applies all gradients via `opt`.
    ///
    /// # Errors
    ///
    /// Propagates layer/compressor backward errors.
    pub fn backward_and_step(
        &mut self,
        grad_logits: &Tensor,
        batch: usize,
        opt: &mut dyn Optimizer,
    ) -> Result<()> {
        let grad_seq = self.head.backward(grad_logits)?; // [b, L, e]
        let e_out = self.embedding.output_dim();
        let grad_flat = grad_seq.reshape(&[batch * self.config.input_len, e_out])?;
        self.embedding.backward(&grad_flat)?;
        self.embedding.apply_gradients(opt)?;
        let mut head_err: Option<memcom_nn::NnError> = None;
        self.head.visit_params(&mut |id, value, grad| {
            if head_err.is_none() {
                if let Err(e) = opt.step_dense(id, value, grad) {
                    head_err = Some(e);
                }
            }
        });
        self.head.zero_grad();
        if let Some(e) = head_err {
            return Err(e.into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_nn::softmax_cross_entropy;
    use memcom_nn::Adam;

    fn config(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            ..ModelConfig::classifier(500, 16, 8, 12)
        }
    }

    #[test]
    fn classifier_shapes() {
        let mut model =
            RecModel::new(&config(ModelKind::Classifier), &MethodSpec::Uncompressed).unwrap();
        let ids = vec![3usize; 3 * 8];
        let logits = model.infer(&ids, 3).unwrap();
        assert_eq!(logits.shape().dims(), &[3, 12]);
        // Head: pool+relu+do+bn + dense(16→8)+relu+do+bn + dense(8→12).
        assert_eq!(model.head().len(), 9);
    }

    #[test]
    fn pointwise_drops_hidden_dense() {
        let mut model = RecModel::new(
            &config(ModelKind::PointwiseRanker),
            &MethodSpec::Uncompressed,
        )
        .unwrap();
        assert_eq!(model.head().len(), 5);
        let logits = model.infer(&[1usize; 8], 1).unwrap();
        assert_eq!(logits.shape().dims(), &[1, 12]);
    }

    #[test]
    fn param_count_sums_embedding_and_head() {
        let mut model = RecModel::new(
            &config(ModelKind::PointwiseRanker),
            &MethodSpec::Uncompressed,
        )
        .unwrap();
        let emb = 500 * 16;
        // head: bn(16)*2 + dense 16*12+12
        let head = 32 + 16 * 12 + 12;
        assert_eq!(model.param_count(), emb + head);
    }

    #[test]
    fn reduce_dim_adapts_head() {
        let mut model = RecModel::new(
            &config(ModelKind::Classifier),
            &MethodSpec::ReduceDim { dim: 4 },
        )
        .unwrap();
        let logits = model.infer(&[0usize; 8], 1).unwrap();
        assert_eq!(logits.shape().dims(), &[1, 12]);
        assert!(model.param_count() < 500 * 16);
    }

    #[test]
    fn bad_inputs_rejected() {
        let mut model =
            RecModel::new(&config(ModelKind::Classifier), &MethodSpec::Uncompressed).unwrap();
        assert!(model.infer(&[0usize; 7], 1).is_err()); // wrong length
        assert!(model.infer(&[500usize; 8], 1).is_err()); // out of vocab
        let bad = ModelConfig {
            n_classes: 0,
            ..config(ModelKind::Classifier)
        };
        assert!(RecModel::new(&bad, &MethodSpec::Uncompressed).is_err());
    }

    #[test]
    fn one_training_step_reduces_loss_on_fixed_batch() {
        let mut model = RecModel::new(
            &config(ModelKind::Classifier),
            &MethodSpec::MemCom {
                hash_size: 50,
                bias: true,
            },
        )
        .unwrap();
        let mut opt = Adam::new(5e-3);
        let ids: Vec<usize> = (0..4 * 8).map(|i| (i * 7) % 500).collect();
        let labels = [0usize, 3, 6, 9];
        let mut losses = Vec::new();
        for _ in 0..30 {
            let logits = model.forward(&ids, 4, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            losses.push(out.loss);
            model.backward_and_step(&out.grad, 4, &mut opt).unwrap();
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss failed to fall: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
