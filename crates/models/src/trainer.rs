//! Training loop and evaluation harness.

use memcom_data::{BatchIter, Example};
use memcom_metrics::{accuracy, mean_ndcg};
use memcom_nn::{softmax_cross_entropy, Adam, Mode, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::network::RecModel;
use crate::Result;

/// Which optimizer drives training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Adam with default betas (the workhorse for these models).
    Adam,
    /// Plain SGD (used by the DP experiments, where per-example clipping
    /// pairs naturally with SGD).
    Sgd,
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer choice.
    pub optimizer: OptimizerKind,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 64,
            lr: 2e-3,
            optimizer: OptimizerKind::Adam,
            seed: 17,
        }
    }
}

/// What a training run produced.
///
/// `eval_accuracy`/`eval_ndcg` are **best-checkpoint** values: the model
/// is evaluated after every epoch and the best epoch wins, mirroring the
/// Keras best-checkpoint workflow the paper's sweeps rely on (it also
/// decouples representational capacity from convergence speed, which
/// differs across compression techniques).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Best per-epoch classification accuracy on the eval split.
    pub eval_accuracy: f64,
    /// Best per-epoch mean single-relevant nDCG on the eval split.
    pub eval_ndcg: f64,
    /// Accuracy after the final epoch (for convergence diagnostics).
    pub final_accuracy: f64,
    /// nDCG after the final epoch.
    pub final_ndcg: f64,
}

/// Builds the configured optimizer.
pub fn make_optimizer(config: &TrainConfig) -> Box<dyn Optimizer> {
    match config.optimizer {
        OptimizerKind::Adam => Box::new(Adam::new(config.lr)),
        OptimizerKind::Sgd => Box::new(Sgd::new(config.lr)),
    }
}

/// Trains `model` on `train`, then evaluates on `eval`.
///
/// # Errors
///
/// Propagates forward/backward failures (shape bugs, out-of-vocab ids).
pub fn train(
    model: &mut RecModel,
    train_set: &[Example],
    eval_set: &[Example],
    config: &TrainConfig,
) -> Result<TrainReport> {
    let mut opt = make_optimizer(config);
    let mut order: Vec<usize> = (0..train_set.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut shuffled: Vec<Example> = Vec::with_capacity(train_set.len());
    let mut best_accuracy = 0f64;
    let mut best_ndcg = 0f64;
    let mut final_accuracy = 0f64;
    let mut final_ndcg = 0f64;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        shuffled.clear();
        shuffled.extend(order.iter().map(|&i| train_set[i].clone()));
        let mut total = 0f64;
        let mut batches = 0usize;
        for batch in BatchIter::new(&shuffled, config.batch_size) {
            let b = batch.labels.len();
            let logits = model.forward(&batch.flat_ids, b, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &batch.labels)?;
            model.backward_and_step(&out.grad, b, opt.as_mut())?;
            total += out.loss as f64;
            batches += 1;
        }
        epoch_losses.push(if batches == 0 {
            0.0
        } else {
            (total / batches as f64) as f32
        });
        let (acc, ndcg) = evaluate(model, eval_set, config.batch_size)?;
        best_accuracy = best_accuracy.max(acc);
        best_ndcg = best_ndcg.max(ndcg);
        final_accuracy = acc;
        final_ndcg = ndcg;
    }
    Ok(TrainReport {
        epoch_losses,
        eval_accuracy: best_accuracy,
        eval_ndcg: best_ndcg,
        final_accuracy,
        final_ndcg,
    })
}

/// Evaluates accuracy and mean nDCG over `eval_set`.
///
/// # Errors
///
/// Propagates forward failures.
pub fn evaluate(
    model: &mut RecModel,
    eval_set: &[Example],
    batch_size: usize,
) -> Result<(f64, f64)> {
    let n_classes = model.config().n_classes;
    let mut predictions = Vec::with_capacity(eval_set.len());
    let mut labels = Vec::with_capacity(eval_set.len());
    let mut ndcg_sum = 0f64;
    for batch in BatchIter::new(eval_set, batch_size) {
        let b = batch.labels.len();
        let logits = model.infer(&batch.flat_ids, b)?;
        ndcg_sum += mean_ndcg(logits.as_slice(), n_classes, &batch.labels) * b as f64;
        for row in 0..b {
            let row_slice = &logits.as_slice()[row * n_classes..(row + 1) * n_classes];
            let argmax = row_slice
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty class row");
            predictions.push(argmax);
        }
        labels.extend_from_slice(&batch.labels);
    }
    Ok((
        accuracy(&predictions, &labels),
        ndcg_sum / eval_set.len() as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ModelConfig, ModelKind};
    use memcom_core::MethodSpec;
    use memcom_data::DatasetSpec;

    fn tiny_spec() -> DatasetSpec {
        let mut spec = DatasetSpec::newsgroup().scaled(1_000_000);
        spec.train_samples = 400;
        spec.eval_samples = 120;
        spec.input_len = 16;
        spec
    }

    #[test]
    fn training_beats_chance_on_synthetic_clusters() {
        let spec = tiny_spec();
        let data = spec.generate(11);
        let config = ModelConfig {
            kind: ModelKind::Classifier,
            vocab: spec.input_vocab(),
            embedding_dim: 16,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.05,
            seed: 3,
        };
        let mut model = RecModel::new(&config, &MethodSpec::Uncompressed).unwrap();
        let report = train(
            &mut model,
            &data.train,
            &data.eval,
            &TrainConfig {
                epochs: 6,
                batch_size: 32,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let chance = 1.0 / spec.output_vocab as f64;
        assert!(
            report.eval_accuracy > chance * 3.0,
            "accuracy {} vs chance {}",
            report.eval_accuracy,
            chance
        );
        assert!(report.eval_ndcg > 0.3, "ndcg {}", report.eval_ndcg);
        // Loss decreases across epochs.
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
    }

    #[test]
    fn evaluate_on_untrained_model_is_near_chance() {
        let spec = tiny_spec();
        let data = spec.generate(12);
        let config = ModelConfig {
            kind: ModelKind::PointwiseRanker,
            vocab: spec.input_vocab(),
            embedding_dim: 8,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.0,
            seed: 4,
        };
        let mut model = RecModel::new(&config, &MethodSpec::Uncompressed).unwrap();
        let (acc, ndcg) = evaluate(&mut model, &data.eval, 64).unwrap();
        assert!(acc < 0.3, "untrained accuracy suspiciously high: {acc}");
        assert!(ndcg > 0.0 && ndcg < 1.0);
    }

    #[test]
    fn make_optimizer_kinds() {
        let adam = make_optimizer(&TrainConfig::default());
        assert_eq!(adam.learning_rate(), 2e-3);
        let sgd = make_optimizer(&TrainConfig {
            optimizer: OptimizerKind::Sgd,
            lr: 0.1,
            ..TrainConfig::default()
        });
        assert_eq!(sgd.learning_rate(), 0.1);
    }
}
