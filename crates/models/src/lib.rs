//! The paper's models, training loop, and compression sweeps.
//!
//! Three networks, all built around an interchangeable
//! [`EmbeddingCompressor`](memcom_core::EmbeddingCompressor):
//!
//! * [`network::RecModel`] with [`network::ModelKind::Classifier`] — the
//!   Code-1 embedding-based fully connected feed-forward network of §5.1.
//! * [`network::RecModel`] with [`network::ModelKind::PointwiseRanker`] —
//!   the §5.2 variant ("removing the Dense layer following the Average
//!   Pooling").
//! * [`ranknet::RankNet`] — the §5.2 pairwise siamese network for Arcade.
//!
//! [`sweep`] runs the compression-vs-quality grids behind Figures 1–3:
//! train the uncompressed baseline, train every compressed configuration,
//! and report `(compression ratio, % quality loss)` pairs.

pub mod error;
pub mod network;
pub mod ranknet;
pub mod sweep;
pub mod trainer;

pub use error::ModelError;
pub use network::{ModelConfig, ModelKind, RecModel};
pub use ranknet::RankNet;
pub use sweep::{SweepConfig, SweepPoint, SweepResult};
pub use trainer::{TrainConfig, TrainReport};

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
