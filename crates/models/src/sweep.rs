//! Compression-vs-quality sweeps (the engine behind Figures 1–3).
//!
//! A sweep trains the uncompressed baseline once, then trains one model
//! per [`MethodSpec`] grid point (in parallel across worker threads) and
//! reports each point as `(compression ratio, % quality loss)` — exactly
//! the axes of the paper's figures. Ratios are whole-model, "for
//! consistency across the datasets, we measure the number of parameters of
//! all the layers and not just the embedding layers".

use memcom_core::{budget::compression_ratio, MethodSpec, QrCombiner};
use memcom_data::{DatasetSpec, GeneratedData};
use memcom_metrics::relative_loss_pct;

use crate::network::{ModelConfig, ModelKind, RecModel};
use crate::ranknet::RankNet;
use crate::trainer::{train, TrainConfig};
use crate::{ModelError, Result};

/// One trained grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Technique label (figure legend).
    pub label: String,
    /// Total model parameters.
    pub params: usize,
    /// Whole-model compression ratio vs the uncompressed baseline.
    pub compression_ratio: f64,
    /// Eval accuracy (classification) of this point.
    pub accuracy: f64,
    /// Eval nDCG of this point.
    pub ndcg: f64,
    /// % accuracy loss vs baseline (Figure 1 y-axis).
    pub accuracy_loss_pct: f64,
    /// % nDCG loss vs baseline (Figures 2–3 y-axis).
    pub ndcg_loss_pct: f64,
}

/// A full sweep: baseline plus all compressed points.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Dataset name.
    pub dataset: &'static str,
    /// The uncompressed reference point.
    pub baseline: SweepPoint,
    /// All compressed grid points, in input order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Renders the sweep as an aligned text table (experiment binaries
    /// print this directly).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>8} {:>9} {:>9} {:>10} {:>10}\n",
            "method", "params", "ratio", "acc", "ndcg", "acc_loss%", "ndcg_loss%"
        ));
        let row = |p: &SweepPoint| {
            format!(
                "{:<28} {:>12} {:>8.2} {:>9.4} {:>9.4} {:>10.2} {:>10.2}\n",
                p.label,
                p.params,
                p.compression_ratio,
                p.accuracy,
                p.ndcg,
                p.accuracy_loss_pct,
                p.ndcg_loss_pct
            )
        };
        out.push_str(&row(&self.baseline));
        for p in &self.points {
            out.push_str(&row(p));
        }
        out
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Network variant (classifier for Figure 1, pointwise for Figure 2).
    pub kind: ModelKind,
    /// Reference embedding dimension.
    pub embedding_dim: usize,
    /// Training hyperparameters shared by every point.
    pub train: TrainConfig,
    /// Worker threads (1 = sequential).
    pub workers: usize,
    /// Independent training runs per grid point (different init seeds);
    /// quality numbers are averaged to suppress run-to-run variance.
    pub replicates: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            kind: ModelKind::Classifier,
            embedding_dim: 32,
            train: TrainConfig::default(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            replicates: 1,
        }
    }
}

/// The paper's hash-size grid scaled to a vocabulary: the §5 sweep uses
/// `m ∈ {100K, 50K, 25K, 10K, 5K, 1K}` against 100K+ vocabularies, i.e.
/// roughly `v/{1, 2, 4, 10, 20, 100}`; this helper reproduces those
/// fractions for any (scaled) vocabulary.
pub fn hash_size_grid(vocab: usize) -> Vec<usize> {
    [2usize, 4, 10, 20, 100]
        .iter()
        .map(|d| (vocab / d).max(1))
        .filter(|&m| m < vocab)
        .collect()
}

/// The full §5 method grid for one dataset: every technique at every
/// applicable hyperparameter, mirroring the figure legends.
pub fn paper_method_grid(vocab: usize, embedding_dim: usize) -> Vec<MethodSpec> {
    let mut specs = Vec::new();
    for m in hash_size_grid(vocab) {
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: true,
        });
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: false,
        });
        specs.push(MethodSpec::NaiveHash { hash_size: m });
        specs.push(MethodSpec::DoubleHash { hash_size: m });
        specs.push(MethodSpec::QuotientRemainder {
            hash_size: m,
            combiner: QrCombiner::Multiply,
        });
        specs.push(MethodSpec::QuotientRemainder {
            hash_size: m,
            combiner: QrCombiner::Concat,
        });
        specs.push(MethodSpec::TruncateRare { keep: m });
    }
    // "reduce embedding dim": e/2, e/4, … down to 4 (paper: 128…4 from 256).
    let mut dim = embedding_dim / 2;
    while dim >= 4 {
        specs.push(MethodSpec::ReduceDim { dim });
        dim /= 2;
    }
    // "factorized embedding": hidden from e/2 downward by 2.
    let mut hidden = embedding_dim / 2;
    while hidden >= 2 {
        specs.push(MethodSpec::Factorized { hidden });
        hidden /= 2;
    }
    specs
}

/// Trains one (dataset, spec) point and returns its quality numbers.
/// Label, parameter count, accuracy, and nDCG of one trained point.
type PointOutcome = Result<(String, usize, f64, f64)>;

fn run_point(
    data: &GeneratedData,
    dataset: &DatasetSpec,
    config: &SweepConfig,
    spec: &MethodSpec,
) -> Result<(String, usize, f64, f64)> {
    let replicates = config.replicates.max(1);
    let mut params = 0usize;
    let mut acc_sum = 0f64;
    let mut ndcg_sum = 0f64;
    for r in 0..replicates {
        let seed = config.train.seed.wrapping_add(r as u64 * 7919);
        let model_config = ModelConfig {
            kind: config.kind,
            vocab: dataset.input_vocab(),
            embedding_dim: config.embedding_dim,
            input_len: dataset.input_len,
            n_classes: dataset.output_vocab,
            dropout: 0.05,
            seed,
        };
        let mut model = RecModel::new(&model_config, spec)?;
        let train_config = TrainConfig {
            seed,
            ..config.train.clone()
        };
        let report = train(&mut model, &data.train, &data.eval, &train_config)?;
        params = model.param_count();
        acc_sum += report.eval_accuracy;
        ndcg_sum += report.eval_ndcg;
    }
    Ok((
        spec.label(),
        params,
        acc_sum / replicates as f64,
        ndcg_sum / replicates as f64,
    ))
}

/// Runs a full sweep: baseline plus `specs`, parallel across
/// `config.workers` threads.
///
/// # Errors
///
/// Fails if any individual training run fails (the first error wins).
pub fn run_sweep(
    dataset: &DatasetSpec,
    data: &GeneratedData,
    specs: &[MethodSpec],
    config: &SweepConfig,
) -> Result<SweepResult> {
    // Baseline first: its quality anchors every loss percentage.
    let (base_label, base_params, base_acc, base_ndcg) =
        run_point(data, dataset, config, &MethodSpec::Uncompressed)?;
    let baseline = SweepPoint {
        label: base_label,
        params: base_params,
        compression_ratio: 1.0,
        accuracy: base_acc,
        ndcg: base_ndcg,
        accuracy_loss_pct: 0.0,
        ndcg_loss_pct: 0.0,
    };

    // Parallel grid: a shared atomic cursor feeds worker threads.
    let results: std::sync::Mutex<Vec<Option<PointOutcome>>> =
        std::sync::Mutex::new(vec![None; specs.len()]);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let workers = config.workers.max(1).min(specs.len().max(1));
    let worker_panicked = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let outcome = run_point(data, dataset, config, &specs[i]);
                    if let Some(slot) = results.lock().expect("no poisoned workers").get_mut(i) {
                        *slot = Some(outcome);
                    }
                })
            })
            .collect();
        // Join every worker before deciding: short-circuiting would
        // leave later panicked threads unjoined and make the scope
        // re-panic instead of letting us return an error.
        let joined: Vec<bool> = handles.into_iter().map(|h| h.join().is_err()).collect();
        joined.contains(&true)
    });
    if worker_panicked {
        return Err(ModelError::BadConfig {
            context: "sweep worker panicked".into(),
        });
    }

    let mut points = Vec::with_capacity(specs.len());
    for slot in results.into_inner().expect("workers joined") {
        let (label, params, accuracy, ndcg) = slot.expect("cursor covered every index")?;
        points.push(SweepPoint {
            compression_ratio: compression_ratio(base_params, params),
            accuracy_loss_pct: relative_loss_pct(base_acc, accuracy),
            ndcg_loss_pct: relative_loss_pct(base_ndcg, ndcg),
            label,
            params,
            accuracy,
            ndcg,
        });
    }
    Ok(SweepResult {
        dataset: dataset.name,
        baseline,
        points,
    })
}

/// Runs a pairwise (Figure 3) sweep with the RankNet model.
///
/// # Errors
///
/// Fails if any training run fails.
pub fn run_pairwise_sweep(
    dataset: &DatasetSpec,
    specs: &[MethodSpec],
    config: &SweepConfig,
    seed: u64,
) -> Result<SweepResult> {
    let (train_pairs, eval_pairs) = dataset.try_generate_pairs(seed)?;
    let model_config = ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab: dataset.input_vocab(),
        embedding_dim: config.embedding_dim,
        input_len: dataset.input_len,
        n_classes: dataset.output_vocab,
        dropout: 0.05,
        seed: config.train.seed,
    };
    let run_one = |spec: &MethodSpec| -> Result<(String, usize, f64, f64)> {
        let mut net = RankNet::new(&model_config, spec)?;
        let report = net.train(&train_pairs, &eval_pairs, &config.train)?;
        Ok((
            spec.label(),
            net.param_count(),
            report.pair_accuracy,
            report.eval_ndcg,
        ))
    };
    let (base_label, base_params, base_acc, base_ndcg) = run_one(&MethodSpec::Uncompressed)?;
    let baseline = SweepPoint {
        label: base_label,
        params: base_params,
        compression_ratio: 1.0,
        accuracy: base_acc,
        ndcg: base_ndcg,
        accuracy_loss_pct: 0.0,
        ndcg_loss_pct: 0.0,
    };
    let mut points = Vec::with_capacity(specs.len());
    for spec in specs {
        let (label, params, accuracy, ndcg) = run_one(spec)?;
        points.push(SweepPoint {
            compression_ratio: compression_ratio(base_params, params),
            accuracy_loss_pct: relative_loss_pct(base_acc, accuracy),
            ndcg_loss_pct: relative_loss_pct(base_ndcg, ndcg),
            label,
            params,
            accuracy,
            ndcg,
        });
    }
    Ok(SweepResult {
        dataset: dataset.name,
        baseline,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> DatasetSpec {
        let mut spec = DatasetSpec::newsgroup().scaled(1_000_000);
        spec.train_samples = 300;
        spec.eval_samples = 100;
        spec.input_len = 12;
        spec
    }

    #[test]
    fn grid_fractions_follow_paper() {
        let grid = hash_size_grid(100_000);
        assert_eq!(grid, vec![50_000, 25_000, 10_000, 5_000, 1_000]);
        // Tiny vocabularies keep at least one valid point.
        assert!(!hash_size_grid(8).is_empty());
        assert!(hash_size_grid(8).iter().all(|&m| (1..8).contains(&m)));
    }

    #[test]
    fn paper_grid_contains_every_family() {
        let specs = paper_method_grid(1_000, 32);
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        for family in [
            "memcom(",
            "memcom_nobias(",
            "naive_hash",
            "double_hash",
            "qr_mult",
            "qr_concat",
            "truncate_rare",
            "reduce_dim",
            "factorized",
        ] {
            assert!(
                labels.iter().any(|l| l.starts_with(family)),
                "family {family} missing from grid"
            );
        }
    }

    #[test]
    fn sweep_produces_consistent_ratios() {
        let dataset = tiny_dataset();
        let data = dataset.generate(21);
        let specs = vec![
            MethodSpec::MemCom {
                hash_size: dataset.input_vocab() / 10,
                bias: true,
            },
            MethodSpec::NaiveHash {
                hash_size: dataset.input_vocab() / 10,
            },
        ];
        let config = SweepConfig {
            embedding_dim: 8,
            train: TrainConfig {
                epochs: 1,
                batch_size: 64,
                ..TrainConfig::default()
            },
            workers: 2,
            replicates: 2,
            ..SweepConfig::default()
        };
        let result = run_sweep(&dataset, &data, &specs, &config).unwrap();
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.baseline.compression_ratio, 1.0);
        for p in &result.points {
            assert!(
                p.compression_ratio > 1.0,
                "{} ratio {}",
                p.label,
                p.compression_ratio
            );
            assert!(p.params < result.baseline.params);
        }
        // MEmCom keeps v extra multiplier params → slightly lower ratio
        // than naive hashing at the same m.
        assert!(result.points[0].compression_ratio < result.points[1].compression_ratio);
        let table = result.to_table();
        assert!(table.contains("memcom"));
        assert!(table.contains("naive_hash"));
    }

    #[test]
    fn pairwise_sweep_runs() {
        let mut dataset = tiny_dataset();
        dataset.train_samples = 200;
        let specs = vec![MethodSpec::NaiveHash {
            hash_size: dataset.input_vocab() / 10,
        }];
        let config = SweepConfig {
            embedding_dim: 8,
            train: TrainConfig {
                epochs: 1,
                batch_size: 64,
                ..TrainConfig::default()
            },
            workers: 1,
            ..SweepConfig::default()
        };
        let result = run_pairwise_sweep(&dataset, &specs, &config, 3).unwrap();
        assert_eq!(result.points.len(), 1);
        assert!(result.points[0].compression_ratio > 1.0);
    }
}
