//! Weight initializers.
//!
//! The Keras network of the paper's Code 1 uses Keras defaults:
//! Glorot-uniform for dense kernels and uniform(-0.05, 0.05) for embedding
//! tables. Both are provided here, seeded through the caller's RNG.

use rand::Rng;

use crate::tensor::Tensor;

/// Glorot/Xavier-uniform initialization for a `[fan_in, fan_out]` dense
/// kernel: `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// use memcom_tensor::init::glorot_uniform;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let w = glorot_uniform(64, 32, &mut rng);
/// assert_eq!(w.shape().dims(), &[64, 32]);
/// ```
pub fn glorot_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(&[fan_in, fan_out], -limit, limit, rng)
}

/// Keras-default embedding initialization: `U(-0.05, 0.05)` over an
/// arbitrary shape.
pub fn embedding_uniform<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Tensor {
    Tensor::rand_uniform(dims, -0.05, 0.05, rng)
}

/// He/Kaiming-normal initialization, `N(0, sqrt(2 / fan_in))`, for
/// ReLU-heavy stacks.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::rand_normal(&[fan_in, fan_out], 0.0, std, rng)
}

/// Initializes MEmCom multiplier tables around 1.0 so that at step 0 the
/// multiplied embedding equals the shared hashed row (`1 · U[j]`), which the
/// paper's joint training then perturbs per entity. `jitter` adds a small
/// uniform offset to break ties between entities in the same bucket.
pub fn multiplier_ones<R: Rng + ?Sized>(rows: usize, jitter: f32, rng: &mut R) -> Tensor {
    if jitter == 0.0 {
        Tensor::ones(&[rows, 1])
    } else {
        let mut t = Tensor::rand_uniform(&[rows, 1], -jitter, jitter, rng);
        t.map_inplace(|x| 1.0 + x);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = glorot_uniform(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        // Not degenerate.
        assert!(w.as_slice().iter().any(|&x| x.abs() > limit / 10.0));
    }

    #[test]
    fn embedding_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = embedding_uniform(&[1000, 8], &mut rng);
        assert!(e.as_slice().iter().all(|&x| x.abs() <= 0.05));
        assert_eq!(e.shape().dims(), &[1000, 8]);
    }

    #[test]
    fn he_normal_std() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = he_normal(200, 100, &mut rng);
        let std_target = (2.0f32 / 200.0).sqrt();
        let mean = w.mean();
        let var = w.map(|x| (x - mean) * (x - mean)).mean();
        assert!((var.sqrt() - std_target).abs() < 0.01);
    }

    #[test]
    fn multiplier_ones_centered() {
        let mut rng = StdRng::seed_from_u64(6);
        let exact = multiplier_ones(10, 0.0, &mut rng);
        assert!(exact.as_slice().iter().all(|&x| x == 1.0));
        let jittered = multiplier_ones(1000, 0.01, &mut rng);
        assert!(jittered.as_slice().iter().all(|&x| (x - 1.0).abs() <= 0.01));
        assert!((jittered.mean() - 1.0).abs() < 1e-3);
        assert_eq!(jittered.shape().dims(), &[1000, 1]);
    }

    #[test]
    fn seeded_reproducibility() {
        let w1 = glorot_uniform(10, 10, &mut StdRng::seed_from_u64(9));
        let w2 = glorot_uniform(10, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(w1, w2);
    }
}
