//! Shapes, strides, and index arithmetic for row-major tensors.

use crate::error::TensorError;
use crate::Result;

/// The dimensions of a tensor, stored outermost-first (row-major).
///
/// A `Shape` is a thin, validated wrapper over a `Vec<usize>`. Rank-0
/// (scalar) shapes are allowed and have volume 1.
///
/// # Example
///
/// ```
/// use memcom_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates the rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::InvalidAxis {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The innermost dimension always has stride 1; a scalar has no strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `index` has the wrong
    /// rank, and [`TensorError::IndexOutOfBounds`] when any coordinate
    /// exceeds its extent.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "index of rank {} applied to shape of rank {}",
                    index.len(),
                    self.rank()
                ),
            });
        }
        let strides = self.strides();
        let mut flat = 0usize;
        for (axis, (&i, &extent)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= extent {
                return Err(TensorError::IndexOutOfBounds { index: i, extent });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `flat >= volume`.
    pub fn multi_index(&self, flat: usize) -> Result<Vec<usize>> {
        if flat >= self.volume() {
            return Err(TensorError::IndexOutOfBounds {
                index: flat,
                extent: self.volume(),
            });
        }
        let mut rem = flat;
        let mut out = vec![0usize; self.rank()];
        for (axis, stride) in self.strides().iter().enumerate() {
            out[axis] = rem / stride;
            rem %= stride;
        }
        Ok(out)
    }

    /// Returns the shape with dimension `axis` removed (used by reductions).
    ///
    /// Reducing the only dimension yields the scalar shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn without_axis(&self, axis: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(TensorError::InvalidAxis {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape { dims })
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn volume_and_rank() {
        assert_eq!(Shape::new(&[2, 3, 4]).volume(), 24);
        assert_eq!(Shape::new(&[2, 3, 4]).rank(), 3);
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::new(&[0, 5]).volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        for flat in 0..s.volume() {
            let idx = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flat_index_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(
            s.flat_index(&[2, 0]),
            Err(TensorError::IndexOutOfBounds {
                index: 2,
                extent: 2
            })
        );
        assert!(matches!(
            s.flat_index(&[0]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(s.multi_index(6).is_err());
    }

    #[test]
    fn without_axis_reduces_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.without_axis(1).unwrap(), Shape::new(&[2, 4]));
        assert_eq!(Shape::new(&[5]).without_axis(0).unwrap(), Shape::scalar());
        assert!(s.without_axis(3).is_err());
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    proptest! {
        #[test]
        fn prop_round_trip_indexing(dims in proptest::collection::vec(1usize..6, 1..4)) {
            let s = Shape::from(dims);
            for flat in 0..s.volume() {
                let idx = s.multi_index(flat).unwrap();
                prop_assert_eq!(s.flat_index(&idx).unwrap(), flat);
            }
        }

        #[test]
        fn prop_strides_decreasing_and_consistent(
            dims in proptest::collection::vec(1usize..6, 1..5)
        ) {
            let s = Shape::from(dims.clone());
            let strides = s.strides();
            // stride[i] == stride[i+1] * dim[i+1]
            for i in 0..dims.len() - 1 {
                prop_assert_eq!(strides[i], strides[i + 1] * dims[i + 1]);
            }
            prop_assert_eq!(strides[dims.len() - 1], 1);
        }
    }
}
