//! Error type shared by all tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the requested shape.
    LengthMismatch {
        /// Number of elements supplied.
        data_len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two shapes could not be broadcast together.
    BroadcastIncompatible {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// The shapes are incompatible for the attempted operation (e.g. matmul
    /// inner dimensions differ).
    ShapeMismatch {
        /// Human-readable description of the constraint that was violated.
        context: String,
    },
    /// An axis argument was out of range for the tensor's rank.
    InvalidAxis {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index was out of bounds for the indexed dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension's extent.
        extent: usize,
    },
    /// A zero-sized dimension or empty tensor was used where it is invalid.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { data_len, expected } => write!(
                f,
                "data length {data_len} does not match shape volume {expected}"
            ),
            TensorError::BroadcastIncompatible { lhs, rhs } => {
                write!(f, "shapes {lhs:?} and {rhs:?} cannot be broadcast together")
            }
            TensorError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, extent } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of extent {extent}"
                )
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch {
                data_len: 3,
                expected: 4,
            },
            TensorError::BroadcastIncompatible {
                lhs: vec![2],
                rhs: vec![3],
            },
            TensorError::ShapeMismatch {
                context: "inner dims".into(),
            },
            TensorError::InvalidAxis { axis: 5, rank: 2 },
            TensorError::IndexOutOfBounds {
                index: 9,
                extent: 3,
            },
            TensorError::EmptyTensor,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
