//! Linear algebra, reductions, and activations on [`Tensor`]s.
//!
//! These free functions (plus a few convenience methods) implement exactly
//! the operator set the paper's network (Code 1) requires: matrix
//! multiplication for `Dense`, axis means for `AveragePooling1D`, softmax /
//! log-softmax for the output layer, and ReLU/sigmoid for activations.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Blocked tile edge for [`matmul`]. 32×32 f32 tiles (4 KiB) fit L1 with
/// room to spare and measured ~3x over the naive loop at e=256.
const TILE: usize = 32;

/// Matrix multiplication `[m, k] × [k, n] → [m, n]` with register-friendly
/// i-k-j loop ordering and blocking.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless both operands are rank 2
/// with matching inner dimensions.
///
/// # Example
///
/// ```
/// use memcom_tensor::{ops::matmul, Tensor};
///
/// # fn main() -> Result<(), memcom_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1., 0., 0., 1.], &[2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "matmul requires rank-2 operands, got {} and {}",
                a.shape(),
                b.shape()
            ),
        });
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            context: format!("matmul inner dims differ: {} vs {}", k, k2),
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0f32; m * n];
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for i in i0..i1 {
                let out_row = &mut out[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = av[i * k + kk];
                    if aik == 0.0 {
                        continue; // one-hot / padded inputs are mostly zero
                    }
                    let b_row = &bv[kk * n..(kk + 1) * n];
                    for (o, &bj) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bj;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix–vector product `[m, k] × [k] → [m]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] for rank or dimension mismatches.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || x.shape().rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "matvec requires [m,k]×[k], got {} and {}",
                a.shape(),
                x.shape()
            ),
        });
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            context: format!("matvec inner dims differ: {} vs {}", k, x.len()),
        });
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0f32; m];
    for i in 0..m {
        out[i] = av[i * k..(i + 1) * k]
            .iter()
            .zip(xv)
            .map(|(&p, &q)| p * q)
            .sum();
    }
    Tensor::from_vec(out, &[m])
}

/// Sums a tensor along `axis`, dropping that axis.
///
/// # Errors
///
/// Returns [`TensorError::InvalidAxis`] when `axis` exceeds the rank.
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(t, axis, 0.0, |acc, x| acc + x)
}

/// Means a tensor along `axis`, dropping that axis. This is exactly the
/// paper's `AveragePooling1D(pool_size=L)` when applied to axis 1 of a
/// `[b, L, e]` activation.
///
/// # Errors
///
/// Returns [`TensorError::InvalidAxis`] when `axis` exceeds the rank.
pub fn mean_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let extent = t.shape().dim(axis)? as f32;
    let summed = sum_axis(t, axis)?;
    Ok(summed.scale(1.0 / extent))
}

/// Maximum along `axis`, dropping that axis.
///
/// # Errors
///
/// Returns [`TensorError::InvalidAxis`] when `axis` exceeds the rank.
pub fn max_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(t, axis, f32::NEG_INFINITY, |acc, x| acc.max(x))
}

fn reduce_axis(t: &Tensor, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    let out_shape = t.shape().without_axis(axis)?;
    let dims = t.shape().dims();
    let extent = dims[axis];
    // outer = product of dims before axis, inner = product after.
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let data = t.as_slice();
    let mut out = vec![init; outer * inner];
    for o in 0..outer {
        for a in 0..extent {
            let base = (o * extent + a) * inner;
            let out_base = o * inner;
            for i in 0..inner {
                out[out_base + i] = f(out[out_base + i], data[base + i]);
            }
        }
    }
    Tensor::from_vec(out, out_shape.dims())
}

/// Rectified linear unit, elementwise.
pub fn relu(t: &Tensor) -> Tensor {
    t.map(|x| x.max(0.0))
}

/// Derivative mask of ReLU at the *input* values (1 where x > 0).
pub fn relu_grad_mask(input: &Tensor) -> Tensor {
    input.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Logistic sigmoid, elementwise, computed stably for large |x|.
pub fn sigmoid(t: &Tensor) -> Tensor {
    t.map(|x| {
        if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        }
    })
}

/// Row-wise softmax over the last axis of a rank-2 tensor, computed with the
/// max-subtraction trick for numerical stability.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] for non-rank-2 input.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let log_sm = log_softmax_rows(logits)?;
    Ok(log_sm.map(f32::exp))
}

/// Row-wise log-softmax over the last axis of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] for non-rank-2 input.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            context: format!("log_softmax_rows requires rank 2, got {}", logits.shape()),
        });
    }
    let (rows, cols) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    let data = logits.as_slice();
    let mut out = vec![0f32; rows * cols];
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        for c in 0..cols {
            out[r * cols + c] = row[c] - max - log_sum;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Concatenates rank-2 tensors along the column (last) axis.
///
/// Used by the concat variants of double hashing and quotient–remainder.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when row counts differ or the
/// input list is empty.
pub fn concat_cols(parts: &[&Tensor]) -> Result<Tensor> {
    if parts.is_empty() {
        return Err(TensorError::EmptyTensor);
    }
    let rows = parts[0].shape().dims()[0];
    for p in parts {
        if p.shape().rank() != 2 || p.shape().dims()[0] != rows {
            return Err(TensorError::ShapeMismatch {
                context: "concat_cols requires rank-2 tensors with equal row counts".into(),
            });
        }
    }
    let total_cols: usize = parts.iter().map(|p| p.shape().dims()[1]).sum();
    let mut out = vec![0f32; rows * total_cols];
    for r in 0..rows {
        let mut col = 0usize;
        for p in parts {
            let c = p.shape().dims()[1];
            out[r * total_cols + col..r * total_cols + col + c].copy_from_slice(p.row(r)?);
            col += c;
        }
    }
    Tensor::from_vec(out, &[rows, total_cols])
}

/// Splits a rank-2 tensor into column blocks of the given widths (inverse of
/// [`concat_cols`]), used when routing gradients back through concatenating
/// embedding compositions.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when widths do not sum to the
/// column count.
pub fn split_cols(t: &Tensor, widths: &[usize]) -> Result<Vec<Tensor>> {
    if t.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            context: format!("split_cols requires rank 2, got {}", t.shape()),
        });
    }
    let (rows, cols) = (t.shape().dims()[0], t.shape().dims()[1]);
    if widths.iter().sum::<usize>() != cols {
        return Err(TensorError::ShapeMismatch {
            context: format!("split widths {:?} do not sum to {} columns", widths, cols),
        });
    }
    let mut outs = Vec::with_capacity(widths.len());
    let mut start = 0usize;
    for &w in widths {
        let mut data = vec![0f32; rows * w];
        for r in 0..rows {
            data[r * w..(r + 1) * w].copy_from_slice(&t.row(r)?[start..start + w]);
        }
        outs.push(Tensor::from_vec(data, &[rows, w])?);
        start += w;
    }
    Ok(outs)
}

/// One-hot encodes integer ids into a `[ids.len(), depth]` matrix. Ids `>=
/// depth` map to the all-zero row, mirroring how a hashed-mod front end
/// clamps its range. This is the Weinberger-style front end of Table 3.
pub fn one_hot(ids: &[usize], depth: usize) -> Tensor {
    let mut data = vec![0f32; ids.len() * depth];
    for (row, &id) in ids.iter().enumerate() {
        if id < depth {
            data[row * depth + id] = 1.0;
        }
    }
    Tensor::from_vec(data, &[ids.len(), depth]).expect("constructed shape always matches")
}

/// Stacks equal-shape rank-1 tensors into a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on length mismatch or
/// [`TensorError::EmptyTensor`] for an empty input list.
pub fn stack_rows(rows: &[&Tensor]) -> Result<Tensor> {
    if rows.is_empty() {
        return Err(TensorError::EmptyTensor);
    }
    let cols = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        if r.len() != cols {
            return Err(TensorError::ShapeMismatch {
                context: "stack_rows requires equal-length rows".into(),
            });
        }
        data.extend_from_slice(r.as_slice());
    }
    Tensor::from_vec(data, &[rows.len(), cols])
}

impl Tensor {
    /// Method-call convenience for [`matmul`].
    ///
    /// # Errors
    ///
    /// See [`matmul`].
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        matmul(self, rhs)
    }

    /// Method-call convenience for [`mean_axis`].
    ///
    /// # Errors
    ///
    /// See [`mean_axis`].
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        mean_axis(self, axis)
    }

    /// Method-call convenience for [`sum_axis`].
    ///
    /// # Errors
    ///
    /// See [`sum_axis`].
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        sum_axis(self, axis)
    }
}

/// Re-export of the broadcast shape resolver for callers who only pull in
/// `ops`.
pub use crate::broadcast::broadcast_shape;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_hand_checked() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let i = t(&[1., 0., 0., 1.], &[2, 2]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = t(&[1., 2.], &[1, 2]);
        let b = t(&[1., 2., 3.], &[3, 1]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn matmul_large_matches_naive() {
        // Exercise the tiled path with sizes > TILE.
        let m = 37;
        let k = 41;
        let n = 35;
        let a_data: Vec<f32> = (0..m * k).map(|i| ((i * 7 % 13) as f32) - 6.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|i| ((i * 11 % 17) as f32) - 8.0).collect();
        let a = t(&a_data, &[m, k]);
        let b = t(&b_data, &[k, n]);
        let c = matmul(&a, &b).unwrap();
        // naive reference
        for i in 0..m {
            for j in 0..n {
                let want: f32 = (0..k)
                    .map(|kk| a_data[i * k + kk] * b_data[kk * n + j])
                    .sum();
                let got = c.as_slice()[i * n + j];
                assert!((want - got).abs() < 1e-3, "({i},{j}): {want} vs {got}");
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let x = t(&[1., -1., 2.], &[3]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[5., 11.]);
        assert!(matvec(&a, &t(&[1., 2.], &[2])).is_err());
    }

    #[test]
    fn axis_reductions() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(sum_axis(&a, 0).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(sum_axis(&a, 1).unwrap().as_slice(), &[6., 15.]);
        assert_eq!(mean_axis(&a, 1).unwrap().as_slice(), &[2., 5.]);
        assert_eq!(max_axis(&a, 0).unwrap().as_slice(), &[4., 5., 6.]);
        assert!(sum_axis(&a, 2).is_err());
    }

    #[test]
    fn mean_axis_is_average_pooling() {
        // [b=1, L=2, e=3]: pooling over L averages the two embedding rows.
        let x = t(&[1., 2., 3., 5., 6., 7.], &[1, 2, 3]);
        let pooled = mean_axis(&x, 1).unwrap();
        assert_eq!(pooled.shape().dims(), &[1, 3]);
        assert_eq!(pooled.as_slice(), &[3., 4., 5.]);
    }

    #[test]
    fn relu_and_mask() {
        let x = t(&[-1., 0., 2.], &[3]);
        assert_eq!(relu(&x).as_slice(), &[0., 0., 2.]);
        assert_eq!(relu_grad_mask(&x).as_slice(), &[0., 0., 1.]);
    }

    #[test]
    fn sigmoid_stable_extremes() {
        let x = t(&[-100., 0., 100.], &[3]);
        let s = sigmoid(&x);
        assert!(s.as_slice()[0].abs() < 1e-6);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!((s.as_slice()[2] - 1.0).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = t(&[1., 2., 3., 1000., 1000., 1000.], &[2, 3]);
        let p = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        // Large logits must not overflow.
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        // Uniform logits → uniform distribution.
        assert!((p.at(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = t(&[0.3, -1.2, 2.0, 0.1, 0.1, 0.1], &[2, 3]);
        let p = softmax_rows(&logits).unwrap();
        let lp = log_softmax_rows(&logits).unwrap();
        assert!(p.map(|x| x.ln()).allclose(&lp, 1e-5));
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let b = t(&[5., 6.], &[2, 1]);
        let c = concat_cols(&[&a, &b]).unwrap();
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[1., 2., 5., 3., 4., 6.]);
        let parts = split_cols(&c, &[2, 1]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert!(split_cols(&c, &[2, 2]).is_err());
        assert!(concat_cols(&[]).is_err());
    }

    #[test]
    fn one_hot_encodes_and_clamps() {
        let oh = one_hot(&[0, 2, 5], 3);
        assert_eq!(oh.shape().dims(), &[3, 3]);
        assert_eq!(oh.row(0).unwrap(), &[1., 0., 0.]);
        assert_eq!(oh.row(1).unwrap(), &[0., 0., 1.]);
        assert_eq!(oh.row(2).unwrap(), &[0., 0., 0.]); // out-of-range → zeros
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let a = t(&[1., 2.], &[2]);
        let b = t(&[3., 4.], &[2]);
        let m = stack_rows(&[&a, &b]).unwrap();
        assert_eq!(m.shape().dims(), &[2, 2]);
        assert!(stack_rows(&[&a, &t(&[1.], &[1])]).is_err());
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(n in 1usize..12) {
            let data: Vec<f32> = (0..n * n).map(|i| (i as f32).sin()).collect();
            let a = Tensor::from_vec(data, &[n, n]).unwrap();
            let mut eye = Tensor::zeros(&[n, n]);
            for i in 0..n { eye.set(&[i, i], 1.0).unwrap(); }
            prop_assert!(matmul(&a, &eye).unwrap().allclose(&a, 1e-5));
        }

        #[test]
        fn prop_matmul_transpose_identity(m in 1usize..8, k in 1usize..8, n in 1usize..8) {
            // (A B)^T == B^T A^T
            let a_data: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).cos()).collect();
            let b_data: Vec<f32> = (0..k * n).map(|i| (i as f32 * 1.3).sin()).collect();
            let a = Tensor::from_vec(a_data, &[m, k]).unwrap();
            let b = Tensor::from_vec(b_data, &[k, n]).unwrap();
            let lhs = matmul(&a, &b).unwrap().transpose().unwrap();
            let rhs = matmul(&b.transpose().unwrap(), &a.transpose().unwrap()).unwrap();
            prop_assert!(lhs.allclose(&rhs, 1e-4));
        }

        #[test]
        fn prop_softmax_rows_probability(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as u64 * 2654435761 + seed) % 97) as f32 / 10.0 - 4.0)
                .collect();
            let logits = Tensor::from_vec(data, &[rows, cols]).unwrap();
            let p = softmax_rows(&logits).unwrap();
            for r in 0..rows {
                let s: f32 = p.row(r).unwrap().iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                prop_assert!(p.row(r).unwrap().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
            }
        }

        #[test]
        fn prop_sum_axis_total_invariant(r in 1usize..6, c in 1usize..6) {
            let data: Vec<f32> = (0..r * c).map(|i| i as f32 - 3.0).collect();
            let a = Tensor::from_vec(data, &[r, c]).unwrap();
            let total = a.sum();
            prop_assert!((sum_axis(&a, 0).unwrap().sum() - total).abs() < 1e-4);
            prop_assert!((sum_axis(&a, 1).unwrap().sum() - total).abs() < 1e-4);
        }
    }
}
