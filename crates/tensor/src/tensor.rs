//! The dense row-major `f32` tensor type.

use rand::Rng;

use crate::broadcast::binary_op;
use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A contiguous, row-major, dense `f32` tensor.
///
/// `Tensor` is the workhorse value type of the whole reproduction: layer
/// activations, weights, gradients, and logits are all `Tensor`s. It owns its
/// storage (a `Vec<f32>`) and is cheap to move but deliberately explicit to
/// copy (`Clone`).
///
/// # Example
///
/// ```
/// use memcom_tensor::Tensor;
///
/// # fn main() -> Result<(), memcom_tensor::TensorError> {
/// let x = Tensor::zeros(&[2, 3]);
/// assert_eq!(x.shape().dims(), &[2, 3]);
/// assert_eq!(x.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from owned data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the shape's volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                data_len: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor with values drawn uniformly from `[low, high)`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], low: f32, high: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume())
            .map(|_| rng.gen_range(low..high))
            .collect();
        Tensor { data, shape }
    }

    /// Creates a tensor with values drawn from `N(mean, std²)` using the
    /// Box–Muller transform (keeps us independent of `rand_distr`).
    pub fn rand_normal<R: Rng + ?Sized>(dims: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let z0 = mag * (2.0 * std::f32::consts::PI * u2).cos();
            let z1 = mag * (2.0 * std::f32::consts::PI * u2).sin();
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying storage in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying storage in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads one element by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::flat_index`].
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes one element by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::flat_index`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                data_len: self.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Borrows row `row` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for non-rank-2 tensors and
    /// [`TensorError::IndexOutOfBounds`] for bad row indices.
    pub fn row(&self, row: usize) -> Result<&[f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "row() requires rank 2, tensor has rank {}",
                    self.shape.rank()
                ),
            });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: row,
                extent: rows,
            });
        }
        Ok(&self.data[row * cols..(row + 1) * cols])
    }

    /// Mutably borrows row `row` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::row`].
    pub fn row_mut(&mut self, row: usize) -> Result<&mut [f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "row_mut() requires rank 2, tensor has rank {}",
                    self.shape.rank()
                ),
            });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: row,
                extent: rows,
            });
        }
        Ok(&mut self.data[row * cols..(row + 1) * cols])
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Broadcasted elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error when shapes are incompatible.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(rhs, |a, b| a + b)
    }

    /// Broadcasted elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error when shapes are incompatible.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(rhs, |a, b| a - b)
    }

    /// Broadcasted elementwise multiplication (the paper's `⊙`).
    ///
    /// # Errors
    ///
    /// Returns a broadcast error when shapes are incompatible.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(rhs, |a, b| a * b)
    }

    /// Broadcasted elementwise division.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error when shapes are incompatible.
    pub fn div(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(rhs, |a, b| a / b)
    }

    /// Broadcasted binary operation with an arbitrary combiner.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error when shapes are incompatible.
    pub fn binary(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        let (data, shape) = binary_op(&self.data, &self.shape, &rhs.data, &rhs.shape, f)?;
        Ok(Tensor { data, shape })
    }

    /// Adds `scalar` to every element.
    pub fn add_scalar(&self, scalar: f32) -> Tensor {
        self.map(|x| x + scalar)
    }

    /// Multiplies every element by `scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|x| x * scalar)
    }

    /// In-place `self += alpha * rhs` for same-shape tensors (the hot path of
    /// every optimizer step, so it avoids allocation).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "axpy requires equal shapes, got {} vs {}",
                    self.shape, rhs.shape
                ),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// Returns 0.0 for empty tensors (keeps loss averaging total).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for empty tensors.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |m| m.max(x)))
            })
            .ok_or(TensorError::EmptyTensor)
    }

    /// Index of the maximum element (first occurrence wins).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for empty tensors.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::EmptyTensor);
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for non-rank-2 tensors.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                context: format!("transpose requires rank 2, got rank {}", self.shape.rank()),
            });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut data = vec![0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            data,
            shape: Shape::new(&[c, r]),
        })
    }

    /// Returns `true` when every element differs from `other`'s by at most
    /// `tol` (and shapes match). Used pervasively in tests.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …({} more)", self.data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(5.0).shape().rank(), 0);
        assert!(Tensor::from_vec(vec![1.0], &[2]).is_err());
    }

    #[test]
    fn rand_uniform_respects_bounds_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor::rand_uniform(&[100], -0.5, 0.5, &mut rng2);
        assert_eq!(t, t2);
    }

    #[test]
    fn rand_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::rand_normal(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10., 20.], &[2, 1]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11., 12., 23., 24.]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10., 20., 60., 80.]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-9., -8., -17., -16.]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.1, 0.2, 0.15, 0.2]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6., 8.]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2., 3., 4., 5.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1., -2., 3., 4.], &[4]).unwrap();
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max().unwrap(), 4.0);
        assert_eq!(a.argmax().unwrap(), 3);
        assert_eq!(a.sq_norm(), 1. + 4. + 9. + 16.);
        assert!(Tensor::zeros(&[0]).max().is_err());
        assert!(Tensor::zeros(&[0]).argmax().is_err());
    }

    #[test]
    fn argmax_first_occurrence() {
        let a = Tensor::from_vec(vec![3., 1., 3.], &[3]).unwrap();
        assert_eq!(a.argmax().unwrap(), 0);
    }

    #[test]
    fn transpose_rank2() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn rows() {
        let mut a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]).unwrap();
        assert_eq!(a.row(1).unwrap(), &[3., 4.]);
        a.row_mut(0).unwrap()[1] = 9.0;
        assert_eq!(a.as_slice(), &[1., 9., 3., 4.]);
        assert!(a.row(2).is_err());
        assert!(Tensor::zeros(&[3]).row(0).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1., 2., 3.], &[3]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5]);
        assert!(a.axpy(1.0, &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn at_and_set() {
        let mut a = Tensor::zeros(&[2, 2]);
        a.set(&[1, 0], 5.0).unwrap();
        assert_eq!(a.at(&[1, 0]).unwrap(), 5.0);
        assert!(a.at(&[2, 0]).is_err());
    }

    #[test]
    fn display_truncates() {
        let a = Tensor::zeros(&[20]);
        let s = a.to_string();
        assert!(s.contains("more"));
        assert!(!Tensor::zeros(&[2]).to_string().is_empty());
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(v in proptest::collection::vec(-100f32..100.0, 1..40)) {
            let n = v.len();
            let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
            let b = Tensor::from_vec(v.iter().rev().copied().collect(), &[n]).unwrap();
            prop_assert!(a.add(&b).unwrap().allclose(&b.add(&a).unwrap(), 1e-6));
        }

        #[test]
        fn prop_scale_linear(v in proptest::collection::vec(-10f32..10.0, 1..40), k in -4f32..4.0) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]).unwrap();
            let lhs = a.scale(k).sum();
            let rhs = a.sum() * k;
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }

        #[test]
        fn prop_transpose_involution(r in 1usize..6, c in 1usize..6) {
            let data: Vec<f32> = (0..r * c).map(|i| i as f32).collect();
            let a = Tensor::from_vec(data, &[r, c]).unwrap();
            prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
        }
    }
}
