//! NumPy-style shape broadcasting.
//!
//! MEmCom's defining operation (Algorithm 2/3 of the paper) multiplies a
//! `b×L×e` hashed-embedding tensor by a `b×L×1` multiplier tensor, relying
//! on broadcasting to expand the trailing 1. This module implements the
//! general broadcasting contract so the layer code — and the tests — can
//! exercise exactly the semantics TensorFlow/PyTorch/NumPy define:
//!
//! 1. Shapes are aligned at their *trailing* dimensions.
//! 2. Missing leading dimensions are treated as extent 1.
//! 3. Two extents are compatible when equal or when either is 1.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// Computes the broadcast shape of two shapes.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastIncompatible`] when any aligned pair of
/// extents differs and neither is 1.
///
/// # Example
///
/// ```
/// use memcom_tensor::{broadcast::broadcast_shape, Shape};
///
/// let out = broadcast_shape(&Shape::new(&[4, 1, 3]), &Shape::new(&[2, 3])).unwrap();
/// assert_eq!(out, Shape::new(&[4, 2, 3]));
/// ```
pub fn broadcast_shape(lhs: &Shape, rhs: &Shape) -> Result<Shape> {
    let rank = lhs.rank().max(rhs.rank());
    let mut dims = vec![0usize; rank];
    for (i, dim) in dims.iter_mut().enumerate() {
        let l = extent_from_end(lhs, i, rank);
        let r = extent_from_end(rhs, i, rank);
        *dim = match (l, r) {
            (a, b) if a == b => a,
            (1, b) => b,
            (a, 1) => a,
            _ => {
                return Err(TensorError::BroadcastIncompatible {
                    lhs: lhs.dims().to_vec(),
                    rhs: rhs.dims().to_vec(),
                })
            }
        };
    }
    Ok(Shape::from(dims))
}

/// Extent of output axis `axis` (0-based in the *output* rank), treating
/// missing leading axes as 1.
fn extent_from_end(shape: &Shape, axis: usize, out_rank: usize) -> usize {
    let offset = out_rank - shape.rank();
    if axis < offset {
        1
    } else {
        shape.dims()[axis - offset]
    }
}

/// Strides (in elements) used to read `shape` as if it had been broadcast
/// to `out`. Broadcast dimensions get stride 0 so repeated reads return the
/// same element.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastIncompatible`] when `shape` cannot
/// broadcast to `out`.
pub fn broadcast_strides(shape: &Shape, out: &Shape) -> Result<Vec<usize>> {
    let out_rank = out.rank();
    if shape.rank() > out_rank {
        return Err(TensorError::BroadcastIncompatible {
            lhs: shape.dims().to_vec(),
            rhs: out.dims().to_vec(),
        });
    }
    let own = shape.strides();
    let offset = out_rank - shape.rank();
    let mut strides = vec![0usize; out_rank];
    for axis in 0..out_rank {
        if axis < offset {
            strides[axis] = 0;
        } else {
            let extent = shape.dims()[axis - offset];
            let out_extent = out.dims()[axis];
            if extent == out_extent {
                strides[axis] = own[axis - offset];
            } else if extent == 1 {
                strides[axis] = 0;
            } else {
                return Err(TensorError::BroadcastIncompatible {
                    lhs: shape.dims().to_vec(),
                    rhs: out.dims().to_vec(),
                });
            }
        }
    }
    Ok(strides)
}

/// Applies a binary function elementwise over two broadcast-compatible
/// buffers, writing into a freshly allocated output buffer.
///
/// This is the single code path used by all broadcasted binary tensor
/// operations, so its correctness (covered by the property tests below)
/// carries the whole crate.
///
/// # Errors
///
/// Propagates broadcast-incompatibility errors from shape resolution.
pub fn binary_op(
    lhs: &[f32],
    lhs_shape: &Shape,
    rhs: &[f32],
    rhs_shape: &Shape,
    f: impl Fn(f32, f32) -> f32,
) -> Result<(Vec<f32>, Shape)> {
    let out_shape = broadcast_shape(lhs_shape, rhs_shape)?;
    let volume = out_shape.volume();
    let mut out = vec![0f32; volume];

    // Fast path: identical shapes — plain zip, no index arithmetic.
    if lhs_shape == rhs_shape {
        for ((o, &a), &b) in out.iter_mut().zip(lhs.iter()).zip(rhs.iter()) {
            *o = f(a, b);
        }
        return Ok((out, out_shape));
    }

    // Fast path: rhs broadcasts along the innermost axis only (the MEmCom
    // multiplier pattern `[.., e] * [.., 1]`).
    if lhs_shape.dims() == out_shape.dims()
        && rhs_shape.rank() == out_shape.rank()
        && rhs_shape.dims()[..out_shape.rank() - 1] == out_shape.dims()[..out_shape.rank() - 1]
        && rhs_shape.dims()[out_shape.rank() - 1] == 1
        && out_shape.rank() >= 1
    {
        let inner = out_shape.dims()[out_shape.rank() - 1];
        for (row, chunk) in out.chunks_mut(inner).enumerate() {
            let b = rhs[row];
            for (o, &a) in chunk.iter_mut().zip(&lhs[row * inner..(row + 1) * inner]) {
                *o = f(a, b);
            }
        }
        return Ok((out, out_shape));
    }

    // General path: stride-0 reads for broadcast dimensions.
    let ls = broadcast_strides(lhs_shape, &out_shape)?;
    let rs = broadcast_strides(rhs_shape, &out_shape)?;
    let out_dims = out_shape.dims().to_vec();
    let rank = out_dims.len();
    let mut idx = vec![0usize; rank];
    let mut l_off = 0usize;
    let mut r_off = 0usize;
    for o in out.iter_mut() {
        *o = f(lhs[l_off], rhs[r_off]);
        // Odometer-increment the multi-index, updating offsets incrementally.
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            l_off += ls[axis];
            r_off += rs[axis];
            if idx[axis] < out_dims[axis] {
                break;
            }
            l_off -= ls[axis] * out_dims[axis];
            r_off -= rs[axis] * out_dims[axis];
            idx[axis] = 0;
        }
    }
    Ok((out, out_shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(dims: &[usize]) -> Shape {
        Shape::new(dims)
    }

    #[test]
    fn broadcast_shape_basic_rules() {
        assert_eq!(
            broadcast_shape(&s(&[2, 3]), &s(&[2, 3])).unwrap(),
            s(&[2, 3])
        );
        assert_eq!(
            broadcast_shape(&s(&[2, 1]), &s(&[2, 3])).unwrap(),
            s(&[2, 3])
        );
        assert_eq!(broadcast_shape(&s(&[3]), &s(&[2, 3])).unwrap(), s(&[2, 3]));
        assert_eq!(
            broadcast_shape(&s(&[4, 1, 3]), &s(&[2, 3])).unwrap(),
            s(&[4, 2, 3])
        );
        assert_eq!(
            broadcast_shape(&Shape::scalar(), &s(&[5])).unwrap(),
            s(&[5])
        );
    }

    #[test]
    fn broadcast_shape_incompatible() {
        assert!(broadcast_shape(&s(&[2, 3]), &s(&[2, 4])).is_err());
        assert!(broadcast_shape(&s(&[3, 2]), &s(&[2, 3])).is_err());
    }

    #[test]
    fn memcom_multiplier_pattern() {
        // [2, 2, 3] * [2, 2, 1]: the paper's U-row times scalar multiplier.
        let u = vec![1., 2., 3., 4., 5., 6., 7., 8., 9., 10., 11., 12.];
        let v = vec![2., 10., 100., 0.5];
        let (out, shape) = binary_op(&u, &s(&[2, 2, 3]), &v, &s(&[2, 2, 1]), |a, b| a * b).unwrap();
        assert_eq!(shape, s(&[2, 2, 3]));
        assert_eq!(
            out,
            vec![2., 4., 6., 40., 50., 60., 700., 800., 900., 5., 5.5, 6.]
        );
    }

    #[test]
    fn general_path_matches_reference() {
        // [2, 1, 2] + [3, 1] -> [2, 3, 2], checked against a hand expansion.
        let a = vec![0., 1., 10., 11.];
        let b = vec![100., 200., 300.];
        let (out, shape) = binary_op(&a, &s(&[2, 1, 2]), &b, &s(&[3, 1]), |x, y| x + y).unwrap();
        assert_eq!(shape, s(&[2, 3, 2]));
        assert_eq!(
            out,
            vec![100., 101., 200., 201., 300., 301., 110., 111., 210., 211., 310., 311.]
        );
    }

    /// Reference implementation: materialize both operands fully.
    fn reference_binary(
        lhs: &[f32],
        lhs_shape: &Shape,
        rhs: &[f32],
        rhs_shape: &Shape,
        f: impl Fn(f32, f32) -> f32,
    ) -> Option<Vec<f32>> {
        let out_shape = broadcast_shape(lhs_shape, rhs_shape).ok()?;
        let mut out = Vec::with_capacity(out_shape.volume());
        for flat in 0..out_shape.volume() {
            let idx = out_shape.multi_index(flat).unwrap();
            let read = |buf: &[f32], shape: &Shape| {
                let offset = out_shape.rank() - shape.rank();
                let own: Vec<usize> = idx[offset..]
                    .iter()
                    .zip(shape.dims())
                    .map(|(&i, &d)| if d == 1 { 0 } else { i })
                    .collect();
                buf[shape.flat_index(&own).unwrap()]
            };
            out.push(f(read(lhs, lhs_shape), read(rhs, rhs_shape)));
        }
        Some(out)
    }

    fn arb_broadcast_pair() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
        proptest::collection::vec(1usize..4, 1..4).prop_flat_map(|out_dims| {
            let make_operand = {
                let out_dims = out_dims.clone();
                move || {
                    let out_dims = out_dims.clone();
                    (0..=out_dims.len()).prop_flat_map(move |rank_drop| {
                        let kept: Vec<usize> = out_dims[rank_drop..].to_vec();
                        proptest::collection::vec(proptest::bool::ANY, kept.len()).prop_map(
                            move |mask| {
                                kept.iter()
                                    .zip(mask)
                                    .map(|(&d, squash)| if squash { 1 } else { d })
                                    .collect::<Vec<usize>>()
                            },
                        )
                    })
                }
            };
            (make_operand(), make_operand())
        })
    }

    proptest! {
        #[test]
        fn prop_binary_matches_reference((ld, rd) in arb_broadcast_pair()) {
            let lhs_shape = Shape::from(ld);
            let rhs_shape = Shape::from(rd);
            let lhs: Vec<f32> = (0..lhs_shape.volume()).map(|i| i as f32 + 0.5).collect();
            let rhs: Vec<f32> = (0..rhs_shape.volume()).map(|i| (i as f32) * 2.0 - 3.0).collect();
            let got = binary_op(&lhs, &lhs_shape, &rhs, &rhs_shape, |a, b| a * b + 1.0);
            let want = reference_binary(&lhs, &lhs_shape, &rhs, &rhs_shape, |a, b| a * b + 1.0);
            match (got, want) {
                (Ok((out, _)), Some(expect)) => prop_assert_eq!(out, expect),
                (Err(_), None) => {}
                (g, w) => prop_assert!(false, "mismatch: got {:?}, want {:?}", g.is_ok(), w.is_some()),
            }
        }

        #[test]
        fn prop_broadcast_commutative((ld, rd) in arb_broadcast_pair()) {
            let l = Shape::from(ld);
            let r = Shape::from(rd);
            let ab = broadcast_shape(&l, &r);
            let ba = broadcast_shape(&r, &l);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_broadcast_idempotent(dims in proptest::collection::vec(1usize..5, 0..4)) {
            let shp = Shape::from(dims);
            prop_assert_eq!(broadcast_shape(&shp, &shp).unwrap(), shp);
        }
    }
}
