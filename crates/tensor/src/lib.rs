//! Dense `f32` tensor substrate for the MEmCom reproduction.
//!
//! This crate provides the minimal-but-complete numerical core that the
//! paper's training stack needs: row-major dense tensors, NumPy-style
//! broadcasting (the paper leans on broadcasting for MEmCom's `v×1`
//! multiplier table), blocked matrix multiplication, axis reductions,
//! activations, and seeded weight initializers.
//!
//! Design notes:
//! * Everything is `f32` — matching the paper's FP32 training/inference
//!   setup (Table 3 explicitly evaluates non-quantized FP32 models).
//! * Tensors are always contiguous row-major. Views are intentionally not
//!   implemented; the layer code copies rows where needed, which keeps the
//!   backward passes simple to audit against finite differences.
//! * All randomness flows through caller-supplied [`rand::Rng`] values so
//!   experiments are reproducible bit-for-bit from a seed.
//!
//! # Example
//!
//! ```
//! use memcom_tensor::Tensor;
//!
//! # fn main() -> Result<(), memcom_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::from_vec(vec![10.0, 20.0], &[2, 1])?;
//! let c = a.mul(&b)?; // broadcasts the column across a's columns
//! assert_eq!(c.as_slice(), &[10.0, 20.0, 60.0, 80.0]);
//! # Ok(())
//! # }
//! ```

pub mod broadcast;
pub mod error;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
