//! Error type for dataset generation.

use std::error::Error;
use std::fmt;

/// Errors produced by dataset specification and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A dataset specification is internally inconsistent.
    BadSpec {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// A sampler was configured with an empty support.
    EmptySupport,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::BadSpec { context } => write!(f, "bad dataset spec: {context}"),
            DataError::EmptySupport => write!(f, "sampler support must be non-empty"),
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!DataError::EmptySupport.to_string().is_empty());
        assert!(DataError::BadSpec {
            context: "x".into()
        }
        .to_string()
        .contains('x'));
    }
}
