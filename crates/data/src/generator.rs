//! Latent-cluster session generator.
//!
//! The generative model that stands in for the paper's recommendation
//! datasets. Users belong to latent taste clusters; items and output
//! classes are partitioned across clusters by a deterministic hash; a
//! user's history is drawn (mostly) from their cluster's items under a
//! Zipf popularity law, and the label is drawn from their cluster's output
//! classes. A model can therefore only predict well if its embeddings
//! separate items by cluster — which is exactly the capability embedding
//! compression degrades, making accuracy/nDCG sweeps meaningful.
//!
//! Items are hash-assigned (not round-robin) to clusters so that hash-based
//! compressors' collision sets straddle clusters; a round-robin assignment
//! would accidentally align `i mod m` collisions with cluster structure and
//! flatter the naive-hashing baseline.

use rand::Rng;

use crate::batch::{fix_length, Example, PairExample};
use crate::vocab::VocabLayout;
use crate::zipf::Zipf;
use crate::{DataError, Result};

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of the latent-cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterModelConfig {
    /// Number of country ids in the shared vocabulary (0 to disable).
    pub countries: usize,
    /// Number of item ids in the shared vocabulary.
    pub items: usize,
    /// Output vocabulary size (labels).
    pub output_vocab: usize,
    /// Number of latent clusters. Clamped to `output_vocab`.
    pub clusters: usize,
    /// Fixed input length (the paper uses 128).
    pub input_len: usize,
    /// Zipf exponent of item popularity (≈1 for app/movie data; the paper
    /// notes Google Local Reviews is "more even", i.e. a lower exponent).
    pub zipf_exponent: f64,
    /// Probability that a history item / label escapes its cluster.
    pub noise: f64,
    /// Minimum number of (non-padding) history items per example.
    pub min_history: usize,
    /// Fraction of the most popular items that are cluster-agnostic: the
    /// "everyone has the top apps" head. Cluster identity lives in the
    /// tail — the part of the vocabulary compression techniques squeeze.
    pub generic_head_fraction: f64,
    /// Probability that a history item is drawn from the generic head.
    pub head_prob: f64,
}

/// The latent-cluster generative model.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    config: ClusterModelConfig,
    vocab: VocabLayout,
    /// Per-cluster item popularity ranks (ascending global rank).
    cluster_items: Vec<Vec<usize>>,
    /// Per-cluster output classes.
    cluster_outputs: Vec<Vec<usize>>,
    /// Zipf over within-cluster item ranks, one per cluster.
    item_zipfs: Vec<Zipf>,
    /// Zipf over within-cluster output ranks, one per cluster.
    output_zipfs: Vec<Zipf>,
    /// Global item-popularity Zipf (noise draws).
    global_item_zipf: Zipf,
    /// Global output-popularity Zipf (noise labels).
    global_output_zipf: Zipf,
    /// Zipf over the generic head ranks `[0, head_len)`.
    head_zipf: Zipf,
    /// Number of generic head items.
    head_len: usize,
}

impl ClusterModel {
    /// Builds the model and its cluster partitions.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] for inconsistent configurations
    /// (zero items/outputs/clusters, history longer than the input, or a
    /// noise probability outside `[0, 1]`).
    pub fn new(config: ClusterModelConfig) -> Result<Self> {
        if config.items == 0 || config.output_vocab == 0 {
            return Err(DataError::BadSpec {
                context: "items and output vocab must be positive".into(),
            });
        }
        if config.clusters == 0 {
            return Err(DataError::BadSpec {
                context: "need at least one cluster".into(),
            });
        }
        if config.input_len == 0 || config.min_history >= config.input_len {
            return Err(DataError::BadSpec {
                context: format!(
                    "min history {} must be below input length {}",
                    config.min_history, config.input_len
                ),
            });
        }
        if !(0.0..=1.0).contains(&config.noise) {
            return Err(DataError::BadSpec {
                context: format!("noise must be a probability, got {}", config.noise),
            });
        }
        if !(0.0..1.0).contains(&config.generic_head_fraction)
            || !(0.0..=1.0).contains(&config.head_prob)
        {
            return Err(DataError::BadSpec {
                context: "generic head fraction must be in [0,1) and head prob in [0,1]".into(),
            });
        }
        let k = config.clusters.min(config.output_vocab).min(config.items);
        let config = ClusterModelConfig {
            clusters: k,
            ..config
        };
        let vocab = VocabLayout::new(config.countries, config.items)?;

        // The most popular `head_len` items are cluster-agnostic; only the
        // tail is hash-partitioned across clusters.
        let head_len = ((config.items as f64 * config.generic_head_fraction) as usize)
            .min(config.items.saturating_sub(k))
            .max(if config.head_prob > 0.0 { 1 } else { 0 });
        let mut cluster_items: Vec<Vec<usize>> = vec![Vec::new(); k];
        for rank in head_len..config.items {
            cluster_items[(splitmix64(rank as u64) % k as u64) as usize].push(rank);
        }
        let mut cluster_outputs: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class in 0..config.output_vocab {
            cluster_outputs[(splitmix64(class as u64 ^ 0xC1A55E5) % k as u64) as usize].push(class);
        }
        // Hash partitions can leave a cluster empty at tiny sizes; steal
        // from the largest cluster to guarantee non-emptiness.
        rebalance(&mut cluster_items)?;
        rebalance(&mut cluster_outputs)?;

        let item_zipfs = cluster_items
            .iter()
            .map(|items| Zipf::new(items.len(), config.zipf_exponent))
            .collect::<Result<Vec<_>>>()?;
        let output_zipfs = cluster_outputs
            .iter()
            .map(|outs| Zipf::new(outs.len(), config.zipf_exponent))
            .collect::<Result<Vec<_>>>()?;
        let global_item_zipf = Zipf::new(config.items, config.zipf_exponent)?;
        let global_output_zipf = Zipf::new(config.output_vocab, config.zipf_exponent)?;
        let head_zipf = Zipf::new(head_len.max(1), config.zipf_exponent)?;
        Ok(ClusterModel {
            config,
            vocab,
            cluster_items,
            cluster_outputs,
            item_zipfs,
            output_zipfs,
            global_item_zipf,
            global_output_zipf,
            head_zipf,
            head_len,
        })
    }

    /// The effective configuration (clusters may have been clamped).
    pub fn config(&self) -> &ClusterModelConfig {
        &self.config
    }

    /// The id layout in use.
    pub fn vocab(&self) -> &VocabLayout {
        &self.vocab
    }

    /// The cluster an item rank is assigned to (test/debug introspection).
    pub fn item_cluster(&self, rank: usize) -> Option<usize> {
        self.cluster_items
            .iter()
            .position(|items| items.binary_search(&rank).is_ok())
    }

    /// Draws one item id for cluster `k`: a generic head item with
    /// probability `head_prob`, a globally-popular noise item with
    /// probability `noise`, otherwise a cluster-tail item.
    fn sample_item<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> usize {
        let roll: f64 = rng.gen();
        let rank = if self.head_len > 0 && roll < self.config.head_prob {
            self.head_zipf.sample(rng)
        } else if roll < self.config.head_prob + self.config.noise {
            self.global_item_zipf.sample(rng)
        } else {
            let within = self.item_zipfs[k].sample(rng);
            self.cluster_items[k][within]
        };
        self.vocab
            .item_id(rank)
            .expect("rank sampled within bounds")
    }

    /// Number of cluster-agnostic head items.
    pub fn head_len(&self) -> usize {
        self.head_len
    }

    /// Draws one output label for cluster `k`.
    fn sample_label<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.config.noise {
            self.global_output_zipf.sample(rng)
        } else {
            let within = self.output_zipfs[k].sample(rng);
            self.cluster_outputs[k][within]
        }
    }

    /// Generates one classification / pointwise-ranking example.
    pub fn example<R: Rng + ?Sized>(&self, rng: &mut R) -> Example {
        let k = rng.gen_range(0..self.config.clusters);
        let mut history = Vec::with_capacity(self.config.input_len);
        // §5.1: the user's country accompanies the item history. The
        // country correlates with the cluster, giving the model a second
        // (weaker) cluster signal.
        if self.config.countries > 0 {
            let country_rank = k % self.config.countries;
            history.push(self.vocab.country_id(country_rank).expect("rank in bounds"));
        }
        let max_items = self.config.input_len - history.len();
        // Session lengths are log-uniform between the minimum and the input
        // length: real interaction histories are heavy-tailed short, and
        // short sessions are what make per-item identity (the thing hash
        // collisions destroy) matter through the average-pooling stage.
        let n_items = {
            let lo = self.config.min_history.max(1) as f64;
            let hi = max_items.max(self.config.min_history) as f64;
            let u: f64 = rng.gen();
            (lo * (hi / lo).powf(u)).round() as usize
        }
        .clamp(self.config.min_history, max_items);
        for _ in 0..n_items {
            history.push(self.sample_item(k, rng));
        }
        Example {
            input_ids: fix_length(&history, self.config.input_len),
            label: self.sample_label(k, rng),
        }
    }

    /// Generates one pairwise (RankNet) example: the preferred item is the
    /// cluster-consistent label, the other is a popularity-sampled
    /// distractor from a different class.
    pub fn pair_example<R: Rng + ?Sized>(&self, rng: &mut R) -> PairExample {
        let ex = self.example(rng);
        let mut other = self.global_output_zipf.sample(rng);
        // Resample (bounded) until the negative differs from the positive.
        for _ in 0..16 {
            if other != ex.label {
                break;
            }
            other = self.global_output_zipf.sample(rng);
        }
        if other == ex.label {
            other = (ex.label + 1) % self.config.output_vocab;
        }
        PairExample {
            input_ids: ex.input_ids,
            preferred: ex.label,
            other,
        }
    }

    /// Generates `n` examples.
    pub fn examples<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Example> {
        (0..n).map(|_| self.example(rng)).collect()
    }

    /// Generates `n` pairwise examples.
    pub fn pair_examples<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<PairExample> {
        (0..n).map(|_| self.pair_example(rng)).collect()
    }
}

/// Moves entries from the largest bucket into empty ones so every cluster
/// owns at least one element.
fn rebalance(buckets: &mut [Vec<usize>]) -> Result<()> {
    loop {
        let Some(empty) = buckets.iter().position(Vec::is_empty) else {
            return Ok(());
        };
        let largest = buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.len())
            .map(|(i, _)| i)
            .expect("non-empty bucket list");
        if buckets[largest].len() <= 1 {
            return Err(DataError::BadSpec {
                context: "not enough elements to populate every cluster".into(),
            });
        }
        let moved = buckets[largest].pop().expect("largest bucket non-empty");
        buckets[empty].push(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> ClusterModelConfig {
        ClusterModelConfig {
            countries: 4,
            items: 200,
            output_vocab: 40,
            clusters: 8,
            input_len: 16,
            zipf_exponent: 1.05,
            noise: 0.2,
            min_history: 4,
            generic_head_fraction: 0.05,
            head_prob: 0.35,
        }
    }

    #[test]
    fn partitions_cover_everything_nonempty() {
        let model = ClusterModel::new(config()).unwrap();
        let total_items: usize = model.cluster_items.iter().map(Vec::len).sum();
        assert_eq!(total_items, 200 - model.head_len());
        assert_eq!(model.head_len(), 10); // 5% of 200
        assert!(model.cluster_items.iter().all(|c| !c.is_empty()));
        let total_outputs: usize = model.cluster_outputs.iter().map(Vec::len).sum();
        assert_eq!(total_outputs, 40);
        assert!(model.cluster_outputs.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn examples_are_well_formed() {
        let model = ClusterModel::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for ex in model.examples(200, &mut rng) {
            assert_eq!(ex.input_ids.len(), 16);
            assert!(ex.label < 40);
            for &id in &ex.input_ids {
                assert!(id < model.vocab().size(), "id {id} out of vocab");
            }
            // At least min_history non-padding entries.
            let nonpad = ex.input_ids.iter().filter(|&&i| i != 0).count();
            assert!(nonpad >= 4);
        }
    }

    #[test]
    fn histories_concentrate_in_one_cluster() {
        let model = ClusterModel::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut majorities = 0usize;
        let trials = 100;
        for _ in 0..trials {
            let ex = model.example(&mut rng);
            let mut counts = vec![0usize; model.config().clusters];
            for &id in &ex.input_ids {
                if let Some(rank) = model.vocab().item_rank(id) {
                    if let Some(k) = model.item_cluster(rank) {
                        counts[k] += 1;
                    }
                }
            }
            let total: usize = counts.iter().sum();
            let max = counts.iter().max().copied().unwrap_or(0);
            if total > 0 && max * 2 > total {
                majorities += 1;
            }
        }
        // With noise 0.2 the dominant cluster should hold a majority of
        // items in nearly every session.
        assert!(
            majorities > trials * 8 / 10,
            "only {majorities}/{trials} sessions clustered"
        );
    }

    #[test]
    fn labels_correlate_with_history_cluster() {
        let model = ClusterModel::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut consistent = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let ex = model.example(&mut rng);
            // Infer dominant history cluster.
            let mut counts = vec![0usize; model.config().clusters];
            for &id in &ex.input_ids {
                if let Some(rank) = model.vocab().item_rank(id) {
                    if let Some(k) = model.item_cluster(rank) {
                        counts[k] += 1;
                    }
                }
            }
            let k_hist = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(k, _)| k)
                .unwrap();
            if model.cluster_outputs[k_hist].contains(&ex.label) {
                consistent += 1;
            }
        }
        // Labels come from the session cluster ~(1-noise) of the time;
        // allow slack for cluster-inference mistakes.
        assert!(
            consistent > trials * 6 / 10,
            "labels uncorrelated with history: {consistent}/{trials}"
        );
    }

    #[test]
    fn pair_examples_have_distinct_items() {
        let model = ClusterModel::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for pair in model.pair_examples(200, &mut rng) {
            assert_ne!(pair.preferred, pair.other);
            assert!(pair.preferred < 40 && pair.other < 40);
        }
    }

    #[test]
    fn popularity_is_power_law() {
        let model = ClusterModel::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0usize; 200];
        for ex in model.examples(500, &mut rng) {
            for &id in &ex.input_ids {
                if let Some(rank) = model.vocab().item_rank(id) {
                    counts[rank] += 1;
                }
            }
        }
        let head: usize = counts[..20].iter().sum();
        let tail: usize = counts[100..].iter().sum();
        assert!(
            head > tail * 2,
            "head {head} vs tail {tail} — not power law"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let model = ClusterModel::new(config()).unwrap();
        let a = model.examples(10, &mut StdRng::seed_from_u64(9));
        let b = model.examples(10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn validation() {
        assert!(ClusterModel::new(ClusterModelConfig {
            items: 0,
            ..config()
        })
        .is_err());
        assert!(ClusterModel::new(ClusterModelConfig {
            output_vocab: 0,
            ..config()
        })
        .is_err());
        assert!(ClusterModel::new(ClusterModelConfig {
            clusters: 0,
            ..config()
        })
        .is_err());
        assert!(ClusterModel::new(ClusterModelConfig {
            noise: 1.5,
            ..config()
        })
        .is_err());
        assert!(ClusterModel::new(ClusterModelConfig {
            min_history: 16,
            ..config()
        })
        .is_err());
        // Clusters clamp to output vocab rather than failing.
        let m = ClusterModel::new(ClusterModelConfig {
            clusters: 1000,
            ..config()
        })
        .unwrap();
        assert_eq!(m.config().clusters, 40);
    }

    #[test]
    fn no_countries_config_works() {
        let model = ClusterModel::new(ClusterModelConfig {
            countries: 0,
            ..config()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let ex = model.example(&mut rng);
        assert!(ex.input_ids.iter().all(|&id| !model.vocab().is_country(id)));
    }
}
