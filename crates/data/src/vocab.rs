//! The shared id layout of §5.1.
//!
//! The paper maps a shared vocabulary for countries and apps: "if there are
//! n countries and m apps, then the vocabulary is of size n + m + 1. The
//! countries are mapped to ids 1 to n and the apps are mapped to ids n + 1
//! to n + m. The id 0 is reserved for padding" — with frequency-based
//! mapping (most downloaded app = id n + 1, most common country = id 1).

use crate::{DataError, Result};

/// Frequency-sorted shared vocabulary layout (padding + countries + items).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabLayout {
    countries: usize,
    items: usize,
}

impl VocabLayout {
    /// Creates a layout with `countries` country ids and `items` item ids.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] when `items == 0`.
    pub fn new(countries: usize, items: usize) -> Result<Self> {
        if items == 0 {
            return Err(DataError::BadSpec {
                context: "vocabulary needs at least one item".into(),
            });
        }
        Ok(VocabLayout { countries, items })
    }

    /// The padding id (always 0).
    pub const fn padding_id() -> usize {
        0
    }

    /// Total vocabulary size `n + m + 1`.
    pub fn size(&self) -> usize {
        self.countries + self.items + 1
    }

    /// Number of country ids.
    pub fn countries(&self) -> usize {
        self.countries
    }

    /// Number of item ids.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Id of the country with popularity rank `rank` (0 = most common).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] when `rank >= countries`.
    pub fn country_id(&self, rank: usize) -> Result<usize> {
        if rank >= self.countries {
            return Err(DataError::BadSpec {
                context: format!(
                    "country rank {rank} out of range for {} countries",
                    self.countries
                ),
            });
        }
        Ok(1 + rank)
    }

    /// Id of the item with popularity rank `rank` (0 = most downloaded).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] when `rank >= items`.
    pub fn item_id(&self, rank: usize) -> Result<usize> {
        if rank >= self.items {
            return Err(DataError::BadSpec {
                context: format!("item rank {rank} out of range for {} items", self.items),
            });
        }
        Ok(1 + self.countries + rank)
    }

    /// Inverse of [`item_id`](Self::item_id): the popularity rank of an
    /// item id, or `None` for padding/country ids.
    pub fn item_rank(&self, id: usize) -> Option<usize> {
        let first = 1 + self.countries;
        if id >= first && id < first + self.items {
            Some(id - first)
        } else {
            None
        }
    }

    /// Whether `id` denotes a country.
    pub fn is_country(&self, id: usize) -> bool {
        (1..=self.countries).contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_matches_paper_example() {
        // n countries, m apps → vocab n + m + 1; country ranks at 1..=n.
        let v = VocabLayout::new(3, 10).unwrap();
        assert_eq!(v.size(), 14);
        assert_eq!(VocabLayout::padding_id(), 0);
        assert_eq!(v.country_id(0).unwrap(), 1);
        assert_eq!(v.country_id(2).unwrap(), 3);
        assert_eq!(v.item_id(0).unwrap(), 4); // most downloaded app = n + 1
        assert_eq!(v.item_id(9).unwrap(), 13);
    }

    #[test]
    fn rank_round_trip() {
        let v = VocabLayout::new(5, 100).unwrap();
        for rank in [0, 1, 50, 99] {
            assert_eq!(v.item_rank(v.item_id(rank).unwrap()), Some(rank));
        }
        assert_eq!(v.item_rank(0), None);
        assert_eq!(v.item_rank(3), None); // a country id
        assert_eq!(v.item_rank(v.size()), None);
    }

    #[test]
    fn bounds_checked() {
        let v = VocabLayout::new(2, 5).unwrap();
        assert!(v.country_id(2).is_err());
        assert!(v.item_id(5).is_err());
        assert!(VocabLayout::new(2, 0).is_err());
        assert!(VocabLayout::new(0, 5).is_ok()); // countries are optional
    }

    #[test]
    fn is_country_classification() {
        let v = VocabLayout::new(2, 5).unwrap();
        assert!(!v.is_country(0));
        assert!(v.is_country(1));
        assert!(v.is_country(2));
        assert!(!v.is_country(3));
    }

    proptest! {
        #[test]
        fn prop_ids_partition_vocab(countries in 0usize..20, items in 1usize..200) {
            let v = VocabLayout::new(countries, items).unwrap();
            // Every id in [0, size) is exactly one of padding/country/item.
            for id in 0..v.size() {
                let padding = id == VocabLayout::padding_id();
                let country = v.is_country(id);
                let item = v.item_rank(id).is_some();
                prop_assert_eq!(
                    [padding, country, item].iter().filter(|&&b| b).count(),
                    1,
                    "id {} classified wrongly", id
                );
            }
        }
    }
}
