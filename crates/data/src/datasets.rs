//! Dataset specifications mirroring Table 2 of the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{GeneratedData, PairExample};
use crate::generator::{ClusterModel, ClusterModelConfig};
use crate::Result;

/// Which experiment family a dataset is used for (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// §5.1 classification (Newsgroup, Games, Arcade).
    Classification,
    /// §5.2 pointwise ranking (MovieLens, Million Songs, Google Local,
    /// Netflix).
    PointwiseRanking,
    /// §5.2 pairwise RankNet ranking (Arcade).
    PairwiseRanking,
}

/// A dataset stand-in: Table 2's scale parameters plus the generative
/// knobs of the latent-cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Number of training examples.
    pub train_samples: usize,
    /// Number of evaluation examples.
    pub eval_samples: usize,
    /// Country ids in the shared vocabulary (Games/Arcade use these).
    pub countries: usize,
    /// Item ids in the shared vocabulary (input vocab = countries+items+1).
    pub items: usize,
    /// Output vocabulary size.
    pub output_vocab: usize,
    /// Fixed input length (128 throughout the paper).
    pub input_len: usize,
    /// Zipf exponent of popularity (Google Local is notably flatter).
    pub zipf_exponent: f64,
    /// Latent clusters in the generative model.
    pub clusters: usize,
    /// Cluster-escape probability.
    pub noise: f64,
    /// The experiment family this dataset appears in.
    pub task: Task,
}

impl DatasetSpec {
    /// 20 Newsgroups (§5.1): 11.3K/7.5K samples, 105K input vocab, 20
    /// classes.
    pub fn newsgroup() -> Self {
        DatasetSpec {
            name: "newsgroup",
            train_samples: 11_300,
            eval_samples: 7_500,
            countries: 0,
            items: 104_999,
            output_vocab: 20,
            input_len: 128,
            zipf_exponent: 1.05,
            clusters: 20,
            noise: 0.2,
            task: Task::Classification,
        }
    }

    /// MovieLens ratings (§5.2): 655K/72.8K, 10K input, 5K output.
    pub fn movielens() -> Self {
        DatasetSpec {
            name: "movielens",
            train_samples: 655_000,
            eval_samples: 72_800,
            countries: 0,
            items: 9_999,
            output_vocab: 5_000,
            input_len: 128,
            zipf_exponent: 1.05,
            clusters: 25,
            noise: 0.25,
            task: Task::PointwiseRanking,
        }
    }

    /// Million Songs (§5.2): 4.5M/500K, 50K input, 20K output.
    pub fn million_songs() -> Self {
        DatasetSpec {
            name: "million_songs",
            train_samples: 4_500_000,
            eval_samples: 500_000,
            countries: 0,
            items: 49_999,
            output_vocab: 20_000,
            input_len: 128,
            zipf_exponent: 1.05,
            clusters: 25,
            noise: 0.25,
            task: Task::PointwiseRanking,
        }
    }

    /// Google Local Reviews (§5.2): 246K/27K, 200K input, 20K output. The
    /// paper observes its popularity is unusually even (geographical
    /// spread), so the Zipf exponent is markedly lower.
    pub fn google_local() -> Self {
        DatasetSpec {
            name: "google_local",
            train_samples: 246_000,
            eval_samples: 27_000,
            countries: 0,
            items: 199_999,
            output_vocab: 20_000,
            input_len: 128,
            zipf_exponent: 0.6,
            clusters: 25,
            noise: 0.25,
            task: Task::PointwiseRanking,
        }
    }

    /// Netflix ratings (§5.2): 2.1M/235K, 17K input, 16K output.
    pub fn netflix() -> Self {
        DatasetSpec {
            name: "netflix",
            train_samples: 2_100_000,
            eval_samples: 235_000,
            countries: 0,
            items: 16_999,
            output_vocab: 16_000,
            input_len: 128,
            zipf_exponent: 1.05,
            clusters: 25,
            noise: 0.25,
            task: Task::PointwiseRanking,
        }
    }

    /// Games (§5.1, proprietary stand-in): 78M/65K, 480K input vocab
    /// (shared with countries), 119K output.
    pub fn games() -> Self {
        DatasetSpec {
            name: "games",
            train_samples: 78_000_000,
            eval_samples: 65_000,
            countries: 50,
            items: 479_949,
            output_vocab: 119_000,
            input_len: 128,
            zipf_exponent: 1.05,
            clusters: 30,
            noise: 0.25,
            task: Task::Classification,
        }
    }

    /// Arcade (§5.1/§5.2, proprietary stand-in): 7.5M/65K, 300K input
    /// vocab, 145 output classes.
    pub fn arcade() -> Self {
        DatasetSpec {
            name: "arcade",
            train_samples: 7_500_000,
            eval_samples: 65_000,
            countries: 50,
            items: 299_949,
            output_vocab: 145,
            input_len: 128,
            zipf_exponent: 1.05,
            clusters: 20,
            noise: 0.2,
            task: Task::Classification,
        }
    }

    /// All seven Table-2 datasets.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::newsgroup(),
            Self::movielens(),
            Self::million_songs(),
            Self::google_local(),
            Self::netflix(),
            Self::games(),
            Self::arcade(),
        ]
    }

    /// Total input vocabulary size (`countries + items + 1`, §5.1).
    pub fn input_vocab(&self) -> usize {
        self.countries + self.items + 1
    }

    /// Proportionally shrinks the dataset by `factor` (≥1) while keeping
    /// the distributional shape: sample counts and vocabularies divide by
    /// `factor`, floors keep every component viable, and `input_len`,
    /// exponents, clusters, and noise are untouched.
    pub fn scaled(&self, factor: usize) -> DatasetSpec {
        let factor = factor.max(1);
        let scale = |x: usize, min: usize| (x / factor).max(min);
        DatasetSpec {
            train_samples: scale(self.train_samples, 200),
            eval_samples: scale(self.eval_samples, 100),
            items: scale(self.items, self.clusters.max(64)),
            output_vocab: scale(
                self.output_vocab,
                self.clusters.max(8).min(self.output_vocab),
            ),
            countries: if self.countries == 0 {
                0
            } else {
                scale(self.countries, 4)
            },
            ..self.clone()
        }
    }

    fn model(&self) -> Result<ClusterModel> {
        ClusterModel::new(ClusterModelConfig {
            countries: self.countries,
            items: self.items,
            output_vocab: self.output_vocab,
            clusters: self.clusters,
            input_len: self.input_len,
            zipf_exponent: self.zipf_exponent,
            noise: self.noise,
            min_history: (self.input_len / 32).max(2),
            generic_head_fraction: 0.05,
            head_prob: 0.35,
        })
    }

    /// Generates the train/eval split deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent; the built-in specs
    /// and their scaled variants are always consistent.
    pub fn generate(&self, seed: u64) -> GeneratedData {
        self.try_generate(seed)
            .expect("built-in dataset specs are consistent")
    }

    /// Fallible variant of [`generate`](Self::generate).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::BadSpec`] for inconsistent custom specs.
    pub fn try_generate(&self, seed: u64) -> Result<GeneratedData> {
        let model = self.model()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let train = model.examples(self.train_samples, &mut rng);
        let eval = model.examples(self.eval_samples, &mut rng);
        Ok(GeneratedData {
            train,
            eval,
            vocab: model.vocab().clone(),
        })
    }

    /// Generates pairwise (RankNet) train/eval examples.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::BadSpec`] for inconsistent custom specs.
    pub fn try_generate_pairs(&self, seed: u64) -> Result<(Vec<PairExample>, Vec<PairExample>)> {
        let model = self.model()?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A12);
        let train = model.pair_examples(self.train_samples, &mut rng);
        let eval = model.pair_examples(self.eval_samples, &mut rng);
        Ok((train, eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_numbers_preserved() {
        // Spot-check the headline Table 2 entries.
        let ng = DatasetSpec::newsgroup();
        assert_eq!(ng.input_vocab(), 105_000);
        assert_eq!(ng.output_vocab, 20);
        let games = DatasetSpec::games();
        assert_eq!(games.input_vocab(), 480_000);
        assert_eq!(games.output_vocab, 119_000);
        let arcade = DatasetSpec::arcade();
        assert_eq!(arcade.input_vocab(), 300_000);
        assert_eq!(arcade.output_vocab, 145);
        assert_eq!(DatasetSpec::all().len(), 7);
        for spec in DatasetSpec::all() {
            assert_eq!(spec.input_len, 128);
        }
    }

    #[test]
    fn scaled_preserves_shape() {
        let spec = DatasetSpec::movielens().scaled(100);
        assert_eq!(spec.name, "movielens");
        assert_eq!(spec.input_len, 128);
        assert_eq!(spec.zipf_exponent, DatasetSpec::movielens().zipf_exponent);
        assert!(spec.train_samples >= 200);
        assert!(spec.items >= spec.clusters);
        assert!(spec.output_vocab >= 8);
        // scaled(1) is identity.
        assert_eq!(DatasetSpec::netflix().scaled(1), DatasetSpec::netflix());
    }

    #[test]
    fn generation_is_deterministic_and_split_sized() {
        let spec = DatasetSpec::newsgroup().scaled(50);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.eval, b.eval);
        assert_eq!(a.train.len(), spec.train_samples);
        assert_eq!(a.eval.len(), spec.eval_samples);
        assert_eq!(a.vocab.size(), spec.input_vocab());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::movielens().scaled(500);
        assert_ne!(spec.generate(1).train, spec.generate(2).train);
    }

    #[test]
    fn pair_generation_works() {
        let spec = DatasetSpec::arcade().scaled(1000);
        let (train, eval) = spec.try_generate_pairs(3).unwrap();
        assert_eq!(train.len(), spec.train_samples);
        assert_eq!(eval.len(), spec.eval_samples);
        assert!(train.iter().all(|p| p.preferred != p.other));
    }

    #[test]
    fn google_local_is_flatter() {
        assert!(DatasetSpec::google_local().zipf_exponent < DatasetSpec::movielens().zipf_exponent);
    }

    #[test]
    fn games_and_arcade_share_country_layout() {
        for spec in [DatasetSpec::games(), DatasetSpec::arcade()] {
            assert!(spec.countries > 0, "{} should carry countries", spec.name);
            let scaled = spec.scaled(1000);
            assert!(scaled.countries >= 4);
        }
    }
}
