//! Example containers and batching.

use crate::vocab::VocabLayout;

/// One classification / pointwise-ranking example: a fixed-length id
/// sequence (padded with id 0, least-recent items dropped — §5.1) and an
/// output-vocabulary label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Input ids, exactly `input_len` long.
    pub input_ids: Vec<usize>,
    /// Label in `[0, output_vocab)`.
    pub label: usize,
}

/// One pairwise (RankNet) example: the shared user features plus a
/// preferred and a non-preferred output item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairExample {
    /// Input ids, exactly `input_len` long.
    pub input_ids: Vec<usize>,
    /// Output item ranked higher (the observed interaction).
    pub preferred: usize,
    /// Output item ranked lower (a sampled negative).
    pub other: usize,
}

/// A generated train/eval split plus the vocabulary layout it uses.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// Training examples.
    pub train: Vec<Example>,
    /// Evaluation examples.
    pub eval: Vec<Example>,
    /// The id layout shared by all examples.
    pub vocab: VocabLayout,
}

/// Iterator over contiguous mini-batches of examples, yielding the flat id
/// buffer (`batch · input_len` ids) and the label slice the training loop
/// needs. The final partial batch is yielded too.
#[derive(Debug)]
pub struct BatchIter<'a> {
    examples: &'a [Example],
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a batch iterator.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0` — a configuration bug.
    pub fn new(examples: &'a [Example], batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter {
            examples,
            batch_size,
            cursor: 0,
        }
    }
}

/// One mini-batch: flattened ids plus per-example labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// `len = examples_in_batch · input_len`, row-major by example.
    pub flat_ids: Vec<usize>,
    /// `len = examples_in_batch`.
    pub labels: Vec<usize>,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.examples.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.examples.len());
        let slice = &self.examples[self.cursor..end];
        self.cursor = end;
        let mut flat_ids = Vec::with_capacity(slice.len() * slice[0].input_ids.len());
        let mut labels = Vec::with_capacity(slice.len());
        for ex in slice {
            flat_ids.extend_from_slice(&ex.input_ids);
            labels.push(ex.label);
        }
        Some(Batch { flat_ids, labels })
    }
}

/// Pads or truncates a history to exactly `len` ids: keeps the **most
/// recent** `len` entries (drop least-recent, §5.1) and left-pads with the
/// padding id when shorter.
pub fn fix_length(history: &[usize], len: usize) -> Vec<usize> {
    let mut out = vec![VocabLayout::padding_id(); len];
    let take = history.len().min(len);
    let src = &history[history.len() - take..];
    out[len - take..].copy_from_slice(src);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ex(label: usize) -> Example {
        Example {
            input_ids: vec![label; 4],
            label,
        }
    }

    #[test]
    fn batches_cover_all_examples() {
        let examples: Vec<Example> = (0..10).map(ex).collect();
        let batches: Vec<Batch> = BatchIter::new(&examples, 4).collect();
        assert_eq!(batches.len(), 3); // 4 + 4 + 2
        assert_eq!(batches[0].labels, vec![0, 1, 2, 3]);
        assert_eq!(batches[2].labels, vec![8, 9]);
        assert_eq!(batches[0].flat_ids.len(), 16);
        assert_eq!(batches[2].flat_ids.len(), 8);
    }

    #[test]
    fn exact_multiple_has_no_partial_batch() {
        let examples: Vec<Example> = (0..8).map(ex).collect();
        let batches: Vec<Batch> = BatchIter::new(&examples, 4).collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.labels.len() == 4));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let examples: Vec<Example> = vec![ex(0)];
        let _ = BatchIter::new(&examples, 0);
    }

    #[test]
    fn fix_length_pads_left_keeps_recent() {
        // Short history: left-padded with 0.
        assert_eq!(fix_length(&[5, 6], 4), vec![0, 0, 5, 6]);
        // Long history: least-recent (leading) entries dropped.
        assert_eq!(fix_length(&[1, 2, 3, 4, 5], 3), vec![3, 4, 5]);
        // Exact fit.
        assert_eq!(fix_length(&[7, 8], 2), vec![7, 8]);
        // Empty history.
        assert_eq!(fix_length(&[], 3), vec![0, 0, 0]);
    }

    proptest! {
        #[test]
        fn prop_fix_length_always_exact(history in proptest::collection::vec(1usize..100, 0..300), len in 1usize..200) {
            let fixed = fix_length(&history, len);
            prop_assert_eq!(fixed.len(), len);
            // The suffix of the history is preserved in order.
            let take = history.len().min(len);
            prop_assert_eq!(&fixed[len - take..], &history[history.len() - take..]);
        }

        #[test]
        fn prop_batches_partition(n in 1usize..50, bs in 1usize..20) {
            let examples: Vec<Example> = (0..n).map(ex).collect();
            let batches: Vec<Batch> = BatchIter::new(&examples, bs).collect();
            let total: usize = batches.iter().map(|b| b.labels.len()).sum();
            prop_assert_eq!(total, n);
            let labels: Vec<usize> = batches.iter().flat_map(|b| b.labels.clone()).collect();
            prop_assert_eq!(labels, (0..n).collect::<Vec<_>>());
        }
    }
}
