//! Synthetic dataset substrate for the MEmCom reproduction.
//!
//! The paper evaluates on five public datasets (Newsgroup, MovieLens,
//! Million Songs, Google Local Reviews, Netflix) and two proprietary Apple
//! datasets (Games, Arcade). None ship with this repository, so this crate
//! generates *synthetic stand-ins* that reproduce the properties the
//! paper's conclusions depend on:
//!
//! 1. **Power-law id popularity** — §4 motivates MEmCom with power-law
//!    category distributions; our [`zipf::Zipf`] sampler drives all item
//!    draws and ids are frequency-sorted exactly as §5.1 describes
//!    (id 0 = padding, most popular entity = lowest id).
//! 2. **Learnable session → label structure** — a latent-cluster
//!    preference model ([`generator`]) ties a user's interaction history to
//!    their next interaction, so embedding quality measurably affects
//!    accuracy/nDCG — the quantity Figures 1–3 sweep.
//! 3. **Table 2 scale knobs** — [`datasets::DatasetSpec`] carries the
//!    per-dataset vocabulary sizes, sample counts, and fixed input length
//!    128 from Table 2, plus proportionally scaled variants so the full
//!    experiment suite runs on a laptop.
//!
//! # Example
//!
//! ```
//! use memcom_data::datasets::DatasetSpec;
//!
//! let spec = DatasetSpec::movielens().scaled(100);
//! let data = spec.generate(42);
//! assert_eq!(data.train.len(), spec.train_samples);
//! assert!(data.train.iter().all(|ex| ex.input_ids.len() == spec.input_len));
//! ```

pub mod batch;
pub mod datasets;
pub mod error;
pub mod generator;
pub mod vocab;
pub mod zipf;

pub use batch::{BatchIter, Example, GeneratedData, PairExample};
pub use datasets::DatasetSpec;
pub use error::DataError;
pub use vocab::VocabLayout;
pub use zipf::Zipf;

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, DataError>;
