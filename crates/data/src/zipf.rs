//! Zipf (power-law) sampling over ranked supports.
//!
//! §4 of the paper: "commonly used categories, such as words, movies, and
//! apps, are typically power law distributed". Every item draw in the
//! synthetic datasets flows through this sampler, so the generated
//! popularity profiles match the assumption the techniques are judged
//! under.

use rand::Rng;

use crate::{DataError, Result};

/// A Zipf distribution over ranks `0..n`: `P(rank = r) ∝ 1/(r+1)^s`.
///
/// Sampling uses a precomputed CDF with binary search — `O(n)` memory,
/// `O(log n)` per draw, fully deterministic given the caller's RNG.
///
/// # Example
///
/// ```
/// use memcom_data::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), memcom_data::DataError> {
/// let zipf = Zipf::new(1000, 1.1)?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptySupport`] when `n == 0` and
    /// [`DataError::BadSpec`] for non-positive or non-finite exponents.
    pub fn new(n: usize, exponent: f64) -> Result<Self> {
        if n == 0 {
            return Err(DataError::EmptySupport);
        }
        if !exponent.is_finite() || exponent <= 0.0 {
            return Err(DataError::BadSpec {
                context: format!("zipf exponent must be positive and finite, got {exponent}"),
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0f64;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Ok(Zipf { cdf, exponent })
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// The configured exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `r` (0 outside the support).
    pub fn pmf(&self, r: usize) -> f64 {
        match r {
            0 => self.cdf[0],
            r if r < self.cdf.len() => self.cdf[r] - self.cdf[r - 1],
            _ => 0.0,
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draws `k` ranks into a fresh vector.
    pub fn sample_many<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<usize> {
        (0..k).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2).unwrap();
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn head_dominates_tail() {
        let z = Zipf::new(1000, 1.0).unwrap();
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(999));
        // Harmonic: P(0)/P(9) = 10.
        assert!((z.pmf(0) / z.pmf(9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate().take(10) {
            let emp = count as f64 / n as f64;
            let want = z.pmf(r);
            assert!(
                (emp - want).abs() < 0.01 + want * 0.05,
                "rank {r}: empirical {emp} vs pmf {want}"
            );
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let flat = Zipf::new(100, 0.5).unwrap();
        let steep = Zipf::new(100, 2.0).unwrap();
        assert!(steep.pmf(0) > flat.pmf(0));
        assert!(steep.pmf(99) < flat.pmf(99));
    }

    #[test]
    fn validation() {
        assert!(matches!(Zipf::new(0, 1.0), Err(DataError::EmptySupport)));
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(500, 1.3).unwrap();
        let a = z.sample_many(100, &mut StdRng::seed_from_u64(3));
        let b = z.sample_many(100, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    proptest! {
        #[test]
        fn prop_samples_in_support(n in 1usize..2000, s in 0.2f64..3.0, seed in 0u64..50) {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn prop_pmf_monotone_decreasing(n in 2usize..500, s in 0.2f64..3.0) {
            let z = Zipf::new(n, s).unwrap();
            for r in 0..n - 1 {
                prop_assert!(z.pmf(r) >= z.pmf(r + 1) - 1e-12);
            }
        }
    }
}
