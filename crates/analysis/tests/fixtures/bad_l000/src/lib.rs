pub fn first_byte(bytes: &[u8]) -> u8 {
    // memcom-lint: allow(L001)
    unsafe { *bytes.as_ptr() }
}
