use std::time::Instant;

// memcom-lint: hot-path
pub fn serve_one(stages_on: bool) -> Option<Instant> {
    let gated = stages_on.then(Instant::now);
    let bad = Instant::now();
    let _ = bad;
    gated
}
// memcom-lint: end-hot-path
