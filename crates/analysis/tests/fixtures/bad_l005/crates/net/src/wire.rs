pub fn encode_len(n: usize) -> u32 {
    n as u32
}
