use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub struct Counters {
    pub issued: AtomicU64,
}

/// Reads the head byte of a non-empty frame.
pub fn first_byte(bytes: &[u8]) -> u8 {
    // SAFETY: callers pass the non-empty header slice, so the pointer
    // dereference stays in bounds.
    unsafe { *bytes.as_ptr() }
}

// memcom-lint: hot-path
pub fn serve_one(c: &Counters, stages_on: bool) -> Option<Instant> {
    // ORDERING: the outcome counters are Release-published after this;
    // snapshots read them Acquire-first, so Relaxed is sound here.
    c.issued.fetch_add(1, Ordering::Relaxed);
    stages_on.then(Instant::now)
}
// memcom-lint: end-hot-path
