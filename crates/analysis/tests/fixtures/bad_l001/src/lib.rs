pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
