pub fn head(bytes: &[u8]) -> u8 {
    // memcom-lint: allow(L001) -- fixture: the harness asserts reasoned
    // suppressions keep the tree green.
    unsafe { *bytes.as_ptr() }
}
