pub fn decode_u8(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap()
}
