use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counters {
    pub issued: AtomicU64,
}

pub fn tally(c: &Counters) {
    c.issued.fetch_add(1, Ordering::Relaxed);
}
