//! End-to-end tests for the `memcom-lint` binary: each known-bad
//! fixture under `tests/fixtures/` must produce its exact diagnostic
//! (file, line, column, lint ID) and a non-zero exit, the clean and
//! suppressed fixtures must exit zero, and the real workspace itself
//! must be lint-clean.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_check(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memcom-lint"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("spawning memcom-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts a bad fixture yields exit 1 and exactly the expected
/// diagnostic lines (prefix-matched so message wording can evolve
/// without breaking span/ID assertions).
fn assert_bad(name: &str, expected_prefixes: &[&str]) {
    let out = run_check(&fixture(name));
    assert_eq!(out.status.code(), Some(1), "{name}: {}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        expected_prefixes.len(),
        "{name}: expected {} diagnostic(s), got:\n{text}",
        expected_prefixes.len()
    );
    for (line, prefix) in lines.iter().zip(expected_prefixes) {
        assert!(
            line.starts_with(prefix),
            "{name}: expected a diagnostic starting with `{prefix}`, got `{line}`"
        );
    }
}

#[test]
fn bad_l001_undocumented_unsafe() {
    assert_bad("bad_l001", &["src/lib.rs:2:5: L001 undocumented-unsafe:"]);
}

#[test]
fn bad_l002_hot_path_clock() {
    assert_bad("bad_l002", &["src/lib.rs:6:15: L002 hot-path-clock:"]);
}

#[test]
fn bad_l003_panic_on_wire() {
    assert_bad(
        "bad_l003",
        &["crates/net/src/wire.rs:2:28: L003 panic-on-wire:"],
    );
}

#[test]
fn bad_l004_relaxed_ordering_audit() {
    assert_bad(
        "bad_l004",
        &["src/lib.rs:8:27: L004 relaxed-ordering-audit:"],
    );
}

#[test]
fn bad_l005_as_truncation() {
    assert_bad(
        "bad_l005",
        &["crates/net/src/wire.rs:2:7: L005 as-truncation:"],
    );
}

#[test]
fn bad_l000_reasonless_allow_is_a_violation_and_does_not_suppress() {
    assert_bad(
        "bad_l000",
        &[
            "src/lib.rs:2:1: L000 lint-directive:",
            "src/lib.rs:3:5: L001 undocumented-unsafe:",
        ],
    );
}

#[test]
fn clean_fixture_exits_zero_with_no_suppressions() {
    let out = run_check(&fixture("clean"));
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).is_empty(), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("0 violation(s), 0 suppressed"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn suppressed_fixture_exits_zero_and_counts_the_reasoned_allow() {
    let out = run_check(&fixture("suppressed"));
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).is_empty(), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("0 violation(s), 1 suppressed"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn missing_root_exits_two() {
    let out = run_check(&fixture("does_not_exist"));
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

/// The real acceptance gate: the workspace itself must be lint-clean,
/// with every suppression carrying a written reason.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = run_check(&root);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint violations:\n{}\n{}",
        stdout(&out),
        stderr(&out)
    );
}
