//! `memcom-analysis` — repo-invariant static analysis for the memcom
//! workspace.
//!
//! The crate ships one binary, `memcom-lint`, which walks every `.rs`
//! file under a root, lexes it ([`lexer`]), parses `memcom-lint:`
//! directives ([`directives`]), runs the lint catalog ([`lints`],
//! IDs in [`diag::LintId`]), and reports span-accurate diagnostics.
//! Exit codes: 0 clean, 1 violations, 2 usage/IO error.
//!
//! The pass is deliberately dependency-free (the build container is
//! offline): a hand-rolled lexer over the token stream, no `syn`, no
//! type information. Lints therefore trade cleverness for
//! predictability and lean on written-reason suppressions
//! (`// memcom-lint: allow(<ids>) -- <reason>`) where the rule cannot
//! see through a sound site.

pub mod diag;
pub mod directives;
pub mod lexer;
pub mod lints;

use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::Diagnostic;

/// Directory names the walker never descends into.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "results"];

/// Path prefixes (relative, `/`-separated) excluded from the real
/// check: the lint fixtures are deliberately-bad code.
const SKIP_PREFIXES: &[&str] = &["crates/analysis/tests/fixtures"];

/// Outcome of checking a whole tree.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Violations that survived suppression, in (path, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// Diagnostics silenced by `allow` directives (each of which
    /// carries a written reason).
    pub suppressed: usize,
}

impl CheckReport {
    /// True when the tree is lint-clean.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Checks one file's source text as if it lived at `rel_path` (a
/// `/`-separated path relative to the root — path-scoped lints key off
/// it). Returns (diagnostics, suppressed-count).
pub fn check_source(rel_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let lexed = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut comments_by_line: HashMap<u32, Vec<&lexer::Comment>> = HashMap::new();
    for c in &lexed.comments {
        for l in c.line..=c.end_line {
            comments_by_line.entry(l).or_default().push(c);
        }
    }
    let dirs = directives::parse(rel_path, &lexed, &token_lines);
    let spans = lints::test_spans(&lexed.tokens);
    let is_test_file = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    let ctx = lints::FileCtx {
        path: rel_path,
        lexed: &lexed,
        lines: &lines,
        token_lines: &token_lines,
        comments_by_line: &comments_by_line,
        directives: &dirs,
        test_spans: &spans,
        is_test_file,
    };
    let raw = lints::run_all(&ctx);
    let total = raw.len();
    let mut diags: Vec<Diagnostic> = dirs.errors.clone();
    diags.extend(raw.into_iter().filter(|d| !dirs.suppresses(d.lint, d.line)));
    let suppressed = total + dirs.errors.len() - diags.len();
    diags.sort_by_key(|d| (d.line, d.col, d.lint));
    (diags, suppressed)
}

/// Walks every `.rs` file under `root` and runs the full lint pass.
pub fn check_workspace(root: &Path) -> io::Result<CheckReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = CheckReport::default();
    for rel in files {
        let abs = root.join(&rel);
        let src = fs::read_to_string(&abs)?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p)) {
            continue;
        }
        let (diags, suppressed) = check_source(&rel_str, &src);
        report.files_checked += 1;
        report.suppressed += suppressed;
        report.diagnostics.extend(diags);
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::LintId;

    #[test]
    fn check_source_combines_lints_directives_and_suppressions() {
        let src = "\
fn f() {
    unsafe { g() }
    // memcom-lint: allow(L001) -- covered by the caller's invariant
    unsafe { g() }
}
";
        let (diags, suppressed) = check_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!((diags[0].lint, diags[0].line), (LintId::L001, 2));
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn test_dir_files_skip_counter_lints_but_not_unsafe() {
        let src = "\
fn t(c: &C) {
    c.shed.fetch_add(1, Ordering::Relaxed);
    unsafe { core::hint::unreachable_unchecked() }
}
";
        let (diags, _) = check_source("crates/net/tests/shed.rs", src);
        // Integration tests: L004 silent, L001 still applies.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, LintId::L001);
        // The same source in a src file trips both.
        let (diags, _) = check_source("crates/net/src/shed.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }
}
