//! The five repo-invariant lints, over the token stream of one file.
//!
//! Each lint mechanizes a safety contract that previously existed only
//! as prose (see the lint catalog in [`crate::diag::LintId`]). The
//! checks are token-level by design — no type information — so each
//! lint states its recognition rules precisely and leans on
//! suppression comments (with mandatory written reasons) for the
//! sites a dumb-but-predictable rule cannot see through.

use std::collections::{BTreeSet, HashMap};

use crate::diag::{Diagnostic, LintId};
use crate::directives::Directives;
use crate::lexer::{Comment, LexedFile, Tok, TokKind};

/// Files lint L003 (panic-on-wire) patrols, relative to the root:
/// the wire codec and the server's reply paths — everything hostile
/// bytes can reach.
pub const L003_FILES: &[&str] = &["crates/net/src/wire.rs", "crates/net/src/server.rs"];

/// Files lint L005 (as-truncation) patrols: everywhere wire frames are
/// encoded.
pub const L005_FILES: &[&str] = &[
    "crates/net/src/wire.rs",
    "crates/net/src/server.rs",
    "crates/net/src/client.rs",
];

/// Counter field names covered by the documented
/// `issued >= requests + shed + expired` Release/Acquire contract
/// (see `memcom_serve::ModelCounters`). Any `Ordering::Relaxed` whose
/// receiver chain names one of these must justify itself.
pub const CONTRACT_COUNTERS: &[&str] = &["issued", "requests", "shed", "expired"];

/// Everything the lints need to know about one file.
pub struct FileCtx<'a> {
    /// `/`-separated path relative to the checked root.
    pub path: &'a str,
    /// The lexed token/comment stream.
    pub lexed: &'a LexedFile,
    /// Raw source lines (0-indexed storage, 1-based line numbers).
    pub lines: &'a [&'a str],
    /// Lines holding at least one code token.
    pub token_lines: &'a BTreeSet<u32>,
    /// Comments indexed by every line they span.
    pub comments_by_line: &'a HashMap<u32, Vec<&'a Comment>>,
    /// Parsed directives (fences used by L002).
    pub directives: &'a Directives,
    /// Inclusive line spans of `#[cfg(test)]` items; L003/L004/L005
    /// skip them (test code may panic and may read counters loosely).
    pub test_spans: &'a [(u32, u32)],
    /// True when the file lives under a `tests/` directory (an
    /// integration-test crate): L003/L004/L005 skip it wholesale.
    pub is_test_file: bool,
}

impl FileCtx<'_> {
    fn in_test_code(&self, line: u32) -> bool {
        self.is_test_file || self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    fn diag(&self, lint: LintId, tok_line: u32, tok_col: u32, message: String) -> Diagnostic {
        Diagnostic {
            path: self.path.to_string(),
            line: tok_line,
            col: tok_col,
            lint,
            message,
        }
    }

    /// Raw text of 1-based `line` ("" past EOF).
    fn line_text(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).copied().unwrap_or("")
    }

    /// True when a justification comment containing `tag` covers
    /// `line`: either trailing on any line in `[from_line, line]`, or
    /// in the contiguous comment block directly above `from_line`
    /// (attribute lines like `#[target_feature(...)]` may sit
    /// between the block and the code).
    fn justified(&self, from_line: u32, line: u32, tags: &[&str]) -> bool {
        for l in from_line..=line {
            if let Some(comments) = self.comments_by_line.get(&l) {
                if comments
                    .iter()
                    .any(|c| c.trailing && tags.iter().any(|t| c.text.contains(t)))
                {
                    return true;
                }
            }
        }
        let mut l = from_line.saturating_sub(1);
        while l >= 1 {
            if let Some(comments) = self.comments_by_line.get(&l) {
                if comments
                    .iter()
                    .any(|c| tags.iter().any(|t| c.text.contains(t)))
                {
                    return true;
                }
                // A comment line that isn't the tag: keep climbing
                // through the comment block.
                if comments.iter().any(|c| !c.trailing) {
                    l -= 1;
                    continue;
                }
                return false; // trailing comment on a code line: stop
            }
            let text = self.line_text(l);
            let trimmed = text.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                // Blank lines and attributes don't break contiguity.
                l -= 1;
                continue;
            }
            return false;
        }
        false
    }
}

/// Computes the inclusive line spans of `#[cfg(test)]` items.
///
/// Recognition: the token sequence `# [ cfg ( test ) ]`, then the span
/// runs from there to the end of the following item — the matching
/// `}` of its first brace, or the first top-level `;` if a brace never
/// opens (e.g. `#[cfg(test)] use …;`).
pub fn test_spans(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            let start = tokens[i].line;
            // Walk forward to the item body.
            let mut j = i + 7; // past `# [ cfg ( test ) ]`
            let mut depth = 0usize;
            let mut end = tokens.get(j).map_or(start, |t| t.line);
            while j < tokens.len() {
                let t = &tokens[j];
                end = t.line;
                match t.kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            spans.push((start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn is_cfg_test_at(tokens: &[Tok], i: usize) -> bool {
    let pat = [
        TokKind::Punct('#'),
        TokKind::Punct('['),
        TokKind::Ident("cfg".to_string()),
        TokKind::Punct('('),
        TokKind::Ident("test".to_string()),
        TokKind::Punct(')'),
        TokKind::Punct(']'),
    ];
    tokens.len() >= i + pat.len()
        && pat
            .iter()
            .enumerate()
            .all(|(k, p)| &tokens[i + k].kind == p)
}

/// Runs every applicable lint over one file, returning raw (not yet
/// suppression-filtered) diagnostics.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    l001_undocumented_unsafe(ctx, &mut out);
    l002_hot_path_clock(ctx, &mut out);
    if L003_FILES.contains(&ctx.path) {
        l003_panic_on_wire(ctx, &mut out);
    }
    l004_relaxed_ordering(ctx, &mut out);
    if L005_FILES.contains(&ctx.path) {
        l005_as_truncation(ctx, &mut out);
    }
    out.sort_by_key(|d| (d.line, d.col, d.lint));
    out
}

/// L001: every `unsafe` token needs a `SAFETY:` comment directly above
/// (or trailing on its line); `/// # Safety` rustdoc sections count
/// too. Applies everywhere, tests included — unsafe is unsafe.
fn l001_undocumented_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for t in ctx.lexed.tokens.iter().filter(|t| t.is_ident("unsafe")) {
        if !ctx.justified(t.line, t.line, &["SAFETY:", "# Safety"]) {
            out.push(ctx.diag(
                LintId::L001,
                t.line,
                t.col,
                "`unsafe` without an immediately preceding `// SAFETY:` comment stating why the \
                 contract holds"
                    .to_string(),
            ));
        }
    }
}

/// L002: clock reads inside hot-path fences. `Instant::now` /
/// `SystemTime::now` token runs are flagged unless the same line gates
/// the read behind `.then(` / `.map(` (the telemetry-off pattern:
/// `stages_on.then(Instant::now)` executes no clock read when stages
/// are off).
fn l002_hot_path_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.directives.fences.is_empty() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
            continue;
        }
        if !ctx.directives.in_fence(t.line) {
            continue;
        }
        let is_now = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
        if !is_now {
            continue;
        }
        // Gated pattern: `.then(` or `.map(` earlier on the same line
        // means the closure defers the read behind a telemetry flag.
        let text = ctx.line_text(t.line);
        let before = &text[..(t.col as usize - 1).min(text.len())];
        if before.contains(".then(") || before.contains(".map(") {
            continue;
        }
        out.push(
            ctx.diag(
                LintId::L002,
                t.line,
                t.col,
                "unconditional clock read inside a hot-path fence; gate it behind the telemetry \
             flag (`flag.then(Instant::now)`) or justify with allow(L002)"
                    .to_string(),
            ),
        );
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (type syntax like `&mut [u8]`, or a keyword opening a
/// fresh expression like `return [a, b]`).
const NON_EXPR_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "as", "in", "return", "break", "else", "match", "if", "let", "const",
    "static", "impl", "for", "where", "move", "unsafe", "fn",
];

/// L003: panicking constructs on wire decode / server reply paths.
fn l003_panic_on_wire(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.in_test_code(t.line) {
            continue;
        }
        let next = toks.get(i + 1);
        match &t.kind {
            TokKind::Ident(name)
                if (name == "unwrap" || name == "expect")
                    && next.is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(ctx.diag(
                    LintId::L003,
                    t.line,
                    t.col,
                    format!(
                        "`{name}()` on a wire path can panic on hostile input; return a \
                         typed WireError instead"
                    ),
                ));
            }
            TokKind::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next.is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(ctx.diag(
                    LintId::L003,
                    t.line,
                    t.col,
                    format!(
                        "`{name}!` on a wire path; hostile bytes must get typed answers, \
                         never a panic"
                    ),
                ));
            }
            TokKind::Punct('[') => {
                // An index expression: `expr[`, i.e. `[` directly after
                // an identifier, `]`, or `)`. Array literals (`[0; 4]`),
                // attributes (`#[…]`) and macro brackets (`vec![…]`)
                // all have a different preceding token, and an ident
                // that is a keyword which cannot end an expression
                // (`&mut [u8]`, `return [..]`, …) is a type or a fresh
                // expression, not a receiver.
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let is_index = prev.is_some_and(|p| match &p.kind {
                    TokKind::Ident(name) => !NON_EXPR_KEYWORDS.contains(&name.as_str()),
                    TokKind::Punct(']') | TokKind::Punct(')') => true,
                    _ => false,
                });
                if is_index {
                    out.push(ctx.diag(
                        LintId::L003,
                        t.line,
                        t.col,
                        "slice/array index on a wire path can panic; use `.get(..)` and answer \
                         a typed error"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// L004: `Ordering::Relaxed` whose receiver chain names a contract
/// counter must carry an `// ORDERING:` justification.
fn l004_relaxed_ordering(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident("Ordering") || ctx.in_test_code(t.line) {
            continue;
        }
        let is_relaxed = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("Relaxed"));
        if !is_relaxed {
            continue;
        }
        let Some((chain, chain_start_line)) = receiver_chain(toks, i) else {
            continue;
        };
        let named: Vec<&str> = chain
            .iter()
            .filter(|name| CONTRACT_COUNTERS.contains(&name.as_str()))
            .map(String::as_str)
            .collect();
        if named.is_empty() {
            continue;
        }
        if !ctx.justified(chain_start_line, t.line, &["ORDERING:"]) {
            out.push(ctx.diag(
                LintId::L004,
                t.line,
                t.col,
                format!(
                    "Ordering::Relaxed on contract counter `{}` without an `// ORDERING:` \
                     justification (the `issued >= requests + shed + expired` contract \
                     constrains these)",
                    named.join("`/`"),
                ),
            ));
        }
    }
}

/// Walks backward from the `Ordering` token at `i` to the opening `(`
/// of the enclosing call, then back through the `.`-chained receiver,
/// collecting plain field identifiers (`c.shed.load(…)` → `["c",
/// "shed", "load"]`). Returns the idents and the chain's first line.
fn receiver_chain(toks: &[Tok], i: usize) -> Option<(Vec<String>, u32)> {
    // Find the enclosing call's `(`: first unbalanced opener going back.
    let mut depth = 0i32;
    let mut j = i;
    let open = loop {
        j = j.checked_sub(1)?;
        match toks[j].kind {
            TokKind::Punct(')') | TokKind::Punct(']') => depth += 1,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                if depth == 0 {
                    break j;
                }
                depth -= 1;
            }
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') if depth == 0 => {
                return None; // statement boundary before any call open
            }
            _ => {}
        }
    };
    // The chain runs backward from the token before `(`:
    // ident (then repeatedly: `.` then ident / balanced `()`/`[]`).
    let mut chain = Vec::new();
    let mut k = open.checked_sub(1)?;
    let mut start_line = toks[open].line;
    loop {
        match &toks[k].kind {
            TokKind::Ident(name) => {
                chain.push(name.clone());
                start_line = toks[k].line;
            }
            TokKind::Punct(')') | TokKind::Punct(']') => {
                // Skip a balanced group (call args / index) backward.
                let mut d = 1i32;
                while d > 0 {
                    k = match k.checked_sub(1) {
                        Some(k) => k,
                        None => return Some((chain, start_line)),
                    };
                    match toks[k].kind {
                        TokKind::Punct(')') | TokKind::Punct(']') => d += 1,
                        TokKind::Punct('(') | TokKind::Punct('[') => d -= 1,
                        _ => {}
                    }
                }
                start_line = toks[k].line;
            }
            _ => break,
        }
        // Continue only through a `.` linker.
        match k.checked_sub(1) {
            Some(p) if toks[p].is_punct('.') => {
                start_line = toks[p].line;
                k = match p.checked_sub(1) {
                    Some(k) => k,
                    None => break,
                };
            }
            _ => break,
        }
    }
    Some((chain, start_line))
}

/// L005: bare `as u8`/`as u16`/`as u32` narrowing on encode paths.
fn l005_as_truncation(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident("as") || ctx.in_test_code(t.line) {
            continue;
        }
        let Some(target) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if matches!(target, "u8" | "u16" | "u32") {
            out.push(ctx.diag(
                LintId::L005,
                t.line,
                t.col,
                format!(
                    "bare `as {target}` on a wire-encode path silently truncates; validate with \
                     `{target}::try_from` and answer a typed error"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let mut comments_by_line: HashMap<u32, Vec<&Comment>> = HashMap::new();
        for c in &lexed.comments {
            for l in c.line..=c.end_line {
                comments_by_line.entry(l).or_default().push(c);
            }
        }
        let dirs = directives::parse(path, &lexed, &token_lines);
        let spans = test_spans(&lexed.tokens);
        let ctx = FileCtx {
            path,
            lexed: &lexed,
            lines: &lines,
            token_lines: &token_lines,
            comments_by_line: &comments_by_line,
            directives: &dirs,
            test_spans: &spans,
            is_test_file: false,
        };
        let mut diags = dirs.errors.clone();
        diags.extend(
            run_all(&ctx)
                .into_iter()
                .filter(|d| !dirs.suppresses(d.lint, d.line)),
        );
        let suppressed = run_all(&ctx).len() + dirs.errors.len() - diags.len();
        (diags, suppressed)
    }

    #[test]
    fn l001_fires_without_safety_and_accepts_it_above_attributes() {
        let (diags, _) = check("a.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, LintId::L001);
        assert_eq!(diags[0].line, 1);

        let src = "\
// SAFETY: bounds checked by the caller.
#[target_feature(enable = \"sse2\")]
unsafe fn g() {}
";
        let (diags, _) = check("a.rs", src);
        assert!(diags.is_empty(), "{diags:?}");

        // Trailing on the same line works too.
        let (diags, _) = check("a.rs", "let x = unsafe { g() }; // SAFETY: g is pure\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l002_flags_unfenced_nothing_and_fenced_unconditional_reads() {
        let free = "fn f() { let t = Instant::now(); }\n";
        assert!(check("a.rs", free).0.is_empty(), "no fence, no lint");

        let fenced = "\
// memcom-lint: hot-path
fn f() {
    let t0 = stages_on.then(Instant::now); // gated: fine
    let t1 = started.map(|_| Instant::now()); // gated: fine
    let t2 = Instant::now(); // unconditional: flagged
}
// memcom-lint: end-hot-path
";
        let (diags, _) = check("a.rs", fenced);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!((diags[0].lint, diags[0].line), (LintId::L002, 5));
    }

    #[test]
    fn l003_only_in_scoped_files_and_skips_tests() {
        let src = "\
fn decode(b: &[u8]) -> u8 {
    let x = b[0];
    b.first().copied().unwrap()
}
#[cfg(test)]
mod tests {
    fn t() { let v = vec![1]; v[0]; v.get(0).unwrap(); }
}
";
        let (diags, _) = check("crates/net/src/wire.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!((diags[0].line, diags[0].lint), (2, LintId::L003));
        assert_eq!((diags[1].line, diags[1].lint), (3, LintId::L003));
        assert!(
            check("crates/serve/src/store.rs", src).0.is_empty(),
            "out of scope"
        );
    }

    #[test]
    fn l004_requires_ordering_comment_on_contract_counters() {
        let src = "\
fn f(c: &Counters) {
    c.shed.fetch_add(1, Ordering::Relaxed);
    c.frames.fetch_add(1, Ordering::Relaxed);
}
";
        let (diags, _) = check("a.rs", src);
        assert_eq!(diags.len(), 1, "only the contract counter: {diags:?}");
        assert_eq!(diags[0].line, 2);

        let justified = "\
fn f(c: &Counters) {
    // ORDERING: outcome visibility is ordered by the queue mutex.
    c.shed.fetch_add(1, Ordering::Relaxed);
    c.expired.load(Ordering::Relaxed); // ORDERING: joined-reader tally
}
";
        assert!(check("a.rs", justified).0.is_empty());
    }

    #[test]
    fn l004_sees_through_multiline_chains() {
        let src = "\
fn f(s: &S) {
    s.counters
        .expired
        .fetch_add(1, Ordering::Relaxed);
}
";
        let (diags, _) = check("a.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        // Justification above the chain start is accepted.
        let justified = "\
fn f(s: &S) {
    // ORDERING: single-writer worker; snapshot uses Acquire.
    s.counters
        .expired
        .fetch_add(1, Ordering::Relaxed);
}
";
        assert!(check("a.rs", justified).0.is_empty());
    }

    #[test]
    fn l005_flags_narrowing_casts_in_scope() {
        let src = "fn enc(n: usize, out: &mut Vec<u8>) { let x = n as u32; let y = n as u64; }\n";
        let (diags, _) = check("crates/net/src/client.rs", src);
        assert_eq!(diags.len(), 1, "u64 widening is fine: {diags:?}");
        assert_eq!(diags[0].lint, LintId::L005);
        assert!(check("crates/serve/src/store.rs", src).0.is_empty());
    }

    #[test]
    fn suppressions_with_reasons_silence_diagnostics() {
        let src = "\
fn f() {
    // memcom-lint: allow(L001) -- exercised by the fixture tests
    unsafe { g() }
}
";
        let (diags, suppressed) = check("a.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn cfg_test_span_covers_use_items_without_braces() {
        let src = "\
#[cfg(test)]
use helper::panicky;
fn decode(b: &[u8]) -> u8 { b.first().copied().unwrap_or(0) }
";
        // The use item's span must end at its `;`, not swallow decode.
        let spans = test_spans(&lex(src).tokens);
        assert_eq!(spans, vec![(1, 2)]);
    }
}
