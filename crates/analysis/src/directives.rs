//! `memcom-lint:` comment directives: suppressions and hot-path fences.
//!
//! Three directive forms are recognized, all in `//` line comments:
//!
//! ```text
//! // memcom-lint: allow(L003) -- reason the site is sound
//! // memcom-lint: allow(L002, L004) -- one reason may cover several ids
//! // memcom-lint: hot-path
//! // memcom-lint: end-hot-path
//! ```
//!
//! An `allow` **requires** a written reason after ` -- `; a reasonless
//! suppression is itself a violation ([`LintId::L000`]) — the
//! acceptance bar is "every suppression carries a written reason", and
//! the tool, not review vigilance, enforces it. A trailing `allow`
//! covers its own line; a standalone `allow` covers the next line that
//! holds code. `hot-path`/`end-hot-path` open and close the regions
//! lint L002 patrols; unmatched fences are L000 violations so a typo
//! cannot silently unfence a hot loop.

use crate::diag::{Diagnostic, LintId};
use crate::lexer::{Comment, LexedFile};
use std::collections::BTreeSet;

/// One parsed `allow` directive.
#[derive(Debug)]
pub struct Suppression {
    /// Lints this suppression covers.
    pub ids: Vec<LintId>,
    /// The source line the suppression applies to.
    pub covers_line: u32,
    /// Where the directive itself lives (for unused-suppression notes).
    pub at_line: u32,
    /// Marked when a diagnostic is actually suppressed.
    pub used: std::cell::Cell<bool>,
}

/// An inclusive line range fenced as a hot path.
#[derive(Debug, Clone, Copy)]
pub struct Fence {
    /// First fenced line (the line after the `hot-path` marker).
    pub start: u32,
    /// Last fenced line (the `end-hot-path` marker's line).
    pub end: u32,
}

/// Everything directive parsing produced for one file.
#[derive(Debug, Default)]
pub struct Directives {
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Hot-path fenced regions.
    pub fences: Vec<Fence>,
    /// L000 violations found while parsing.
    pub errors: Vec<Diagnostic>,
}

impl Directives {
    /// True when `line` sits inside any hot-path fence.
    pub fn in_fence(&self, line: u32) -> bool {
        self.fences.iter().any(|f| f.start <= line && line <= f.end)
    }

    /// Attempts to suppress a diagnostic at `line` for `lint`; marks
    /// the matching suppression used.
    pub fn suppresses(&self, lint: LintId, line: u32) -> bool {
        for s in &self.suppressions {
            if s.covers_line == line && s.ids.contains(&lint) {
                s.used.set(true);
                return true;
            }
        }
        false
    }
}

const MARKER: &str = "memcom-lint:";

/// Parses directives out of every comment in `file`.
///
/// `lines_with_tokens` tells a standalone `allow` which line it covers:
/// the next line at or below it that holds code.
pub fn parse(path: &str, file: &LexedFile, lines_with_tokens: &BTreeSet<u32>) -> Directives {
    let mut out = Directives::default();
    let mut open_fence: Option<u32> = None;

    for c in &file.comments {
        let Some(rest) = directive_body(c) else {
            continue;
        };
        let err = |msg: String, out: &mut Directives| {
            out.errors.push(Diagnostic {
                path: path.to_string(),
                line: c.line,
                col: 1,
                lint: LintId::L000,
                message: msg,
            });
        };
        if rest == "hot-path" {
            if let Some(prev) = open_fence {
                err(
                    format!(
                        "hot-path fence opened here while the fence from line {prev} is still open"
                    ),
                    &mut out,
                );
            }
            open_fence = Some(c.line);
        } else if rest == "end-hot-path" {
            match open_fence.take() {
                Some(start) => out.fences.push(Fence {
                    start: start + 1,
                    end: c.end_line,
                }),
                None => err(
                    "end-hot-path without a matching hot-path fence".to_string(),
                    &mut out,
                ),
            }
        } else if let Some(allow) = rest.strip_prefix("allow(") {
            match parse_allow(allow) {
                Ok(ids) => {
                    let covers_line = if c.trailing {
                        c.line
                    } else {
                        // The next code line below the directive.
                        match lines_with_tokens.range(c.end_line + 1..).next() {
                            Some(&l) => l,
                            None => {
                                err(
                                    "allow directive at end of file covers no code".to_string(),
                                    &mut out,
                                );
                                continue;
                            }
                        }
                    };
                    out.suppressions.push(Suppression {
                        ids,
                        covers_line,
                        at_line: c.line,
                        used: std::cell::Cell::new(false),
                    });
                }
                Err(msg) => err(msg, &mut out),
            }
        } else {
            err(
                format!(
                    "unknown memcom-lint directive `{}` (expected `allow(<ids>) -- <reason>`, \
                     `hot-path`, or `end-hot-path`)",
                    rest.split_whitespace().next().unwrap_or("")
                ),
                &mut out,
            );
        }
    }
    if let Some(start) = open_fence {
        out.errors.push(Diagnostic {
            path: path.to_string(),
            line: start,
            col: 1,
            lint: LintId::L000,
            message: "hot-path fence is never closed (missing `// memcom-lint: end-hot-path`)"
                .to_string(),
        });
    }
    out
}

/// Extracts the directive body from a comment, if it is one. Only line
/// comments carry directives; `SAFETY:`-style prose in block comments
/// is justification, not configuration.
fn directive_body(c: &Comment) -> Option<&str> {
    let t = c.text.trim_start();
    let rest = t.strip_prefix(MARKER)?;
    Some(rest.trim())
}

/// Parses `"L002, L004) -- reason"` (everything after `allow(`).
fn parse_allow(rest: &str) -> Result<Vec<LintId>, String> {
    let close = rest
        .find(')')
        .ok_or_else(|| "allow directive missing closing `)`".to_string())?;
    let mut ids = Vec::new();
    for raw in rest[..close].split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err("allow() lists no lint ids".to_string());
        }
        match LintId::parse(raw) {
            Some(LintId::L000) => {
                return Err("L000 (lint-directive) cannot be suppressed".to_string())
            }
            Some(id) => ids.push(id),
            None => return Err(format!("unknown lint id `{raw}` in allow()")),
        }
    }
    if ids.is_empty() {
        return Err("allow() lists no lint ids".to_string());
    }
    let after = rest[close + 1..].trim();
    let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(
            "suppression carries no reason (write `allow(<ids>) -- <why this site is sound>`)"
                .to_string(),
        );
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn token_lines(file: &LexedFile) -> BTreeSet<u32> {
        file.tokens.iter().map(|t| t.line).collect()
    }

    #[test]
    fn allow_requires_a_reason() {
        let src = "// memcom-lint: allow(L001)\nlet x = 1;\n";
        let f = lex(src);
        let d = parse("f.rs", &f, &token_lines(&f));
        assert_eq!(d.errors.len(), 1, "reasonless allow is an L000");
        assert!(d.errors[0].message.contains("no reason"));
        assert!(d.suppressions.is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "// memcom-lint: allow(L001, L004) -- test scaffolding\n\n// another comment\nlet x = 1;\n";
        let f = lex(src);
        let d = parse("f.rs", &f, &token_lines(&f));
        assert!(d.errors.is_empty());
        assert_eq!(d.suppressions.len(), 1);
        assert_eq!(d.suppressions[0].covers_line, 4);
        assert!(d.suppresses(LintId::L004, 4));
        assert!(!d.suppresses(LintId::L002, 4));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "let x = 1; // memcom-lint: allow(L003) -- bounded above\n";
        let f = lex(src);
        let d = parse("f.rs", &f, &token_lines(&f));
        assert!(d.suppresses(LintId::L003, 1));
    }

    #[test]
    fn fences_pair_up_and_report_mismatches() {
        let src = "\
// memcom-lint: hot-path
work();
more();
// memcom-lint: end-hot-path
after();
// memcom-lint: end-hot-path
// memcom-lint: hot-path
never_closed();
";
        let f = lex(src);
        let d = parse("f.rs", &f, &token_lines(&f));
        assert_eq!(d.fences.len(), 1);
        assert!(d.in_fence(2) && d.in_fence(3) && d.in_fence(4));
        assert!(!d.in_fence(5));
        // One stray end, one unclosed open.
        assert_eq!(d.errors.len(), 2);
    }

    #[test]
    fn unknown_directives_and_ids_are_l000() {
        let f = lex(
            "// memcom-lint: alow(L001) -- typo\nx();\n// memcom-lint: allow(L999) -- no\ny();\n",
        );
        let d = parse("f.rs", &f, &token_lines(&f));
        assert_eq!(d.errors.len(), 2);
        assert!(d.errors[1].message.contains("unknown lint id"));
    }

    #[test]
    fn l000_itself_cannot_be_suppressed() {
        let f = lex("// memcom-lint: allow(L000) -- nice try\nx();\n");
        let d = parse("f.rs", &f, &token_lines(&f));
        assert_eq!(d.errors.len(), 1);
        assert!(d.errors[0].message.contains("cannot be suppressed"));
    }
}
