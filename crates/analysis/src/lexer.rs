//! A lightweight line/token-level Rust lexer.
//!
//! `memcom-lint` runs in an offline container with no access to `syn`
//! or `rustc` internals, so this lexer implements exactly as much of
//! the Rust lexical grammar as the lints need to be **span-accurate
//! and comment-aware**:
//!
//! * identifiers (including raw `r#ident`) and punctuation, each with a
//!   1-based line/column;
//! * every comment (`//` line and nested `/* */` block), with its text
//!   and whether it trails code on its line — lint directives and
//!   `SAFETY:`/`ORDERING:` justifications live in comments;
//! * string/char/byte/raw-string literals and numbers, lexed only far
//!   enough that an `unwrap` inside `"a string"` or a `//` inside a
//!   string never confuses the lints.
//!
//! It deliberately does **not** build a syntax tree: the lints work on
//! the token stream plus per-line comment maps, which keeps the pass
//! dependency-free and fast enough to run as a test.

/// What a token is; the lints only ever need these three classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `Ordering`, …).
    Ident(String),
    /// Any literal: string, raw string, byte string, char, number.
    Lit,
    /// One punctuation character (`[`, `.`, `!`, `;`, …).
    Punct(char),
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class and (for identifiers) text.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is exactly the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is exactly the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment, line or block, with position and trailing-ness.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//` marker (or between `/*` and `*/`),
    /// untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
    /// True when code tokens precede the comment on its first line —
    /// a trailing comment annotates its own line, a standalone comment
    /// annotates the code below it.
    pub trailing: bool,
}

/// A fully lexed file: tokens plus comments, in source order.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All code tokens in order.
    pub tokens: Vec<Tok>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

struct Lexer {
    chars: Vec<char>,
    at: usize,
    line: u32,
    col: u32,
    out: LexedFile,
    last_token_line: u32,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            at: 0,
            line: 1,
            col: 1,
            out: LexedFile::default(),
            last_token_line: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.at + ahead).copied()
    }

    /// Consumes one character, tracking line/column across newlines
    /// (which may occur inside strings and block comments).
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.at).copied()?;
        self.at += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, kind: TokKind, line: u32, col: u32) {
        self.last_token_line = line;
        self.out.tokens.push(Tok { kind, line, col });
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '"' {
                let (line, col) = (self.line, self.col);
                self.string_literal();
                self.push_tok(TokKind::Lit, line, col);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else {
                let (line, col) = (self.line, self.col);
                self.bump();
                self.push_tok(TokKind::Punct(c), line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            trailing,
        });
    }

    /// Block comments nest in Rust; the whole nest is one comment.
    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push('*');
                        text.push('/');
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate, rustc rejects it anyway
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
            trailing,
        });
    }

    /// An identifier — unless it turns out to prefix a literal
    /// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`) or a raw identifier
    /// (`r#ident`).
    fn ident_or_prefixed_literal(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let next = self.peek(0);
        let raw_capable = name == "r" || name == "br";
        if (raw_capable || name == "b") && next == Some('"') {
            if name == "b" {
                self.string_literal();
            } else {
                self.raw_string_literal(0);
            }
            self.push_tok(TokKind::Lit, line, col);
            return;
        }
        if raw_capable && next == Some('#') {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                for _ in 0..hashes {
                    self.bump();
                }
                self.raw_string_literal(hashes);
                self.push_tok(TokKind::Lit, line, col);
                return;
            }
            // `r#ident`: a raw identifier, token text is the raw name.
            if name == "r" && self.peek(1).is_some_and(is_ident_start) {
                self.bump(); // '#'
                let mut raw = String::new();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        raw.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push_tok(TokKind::Ident(raw), line, col);
                return;
            }
        }
        self.push_tok(TokKind::Ident(name), line, col);
    }

    /// A `"…"` string with escapes (opening quote not yet consumed).
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
    }

    /// A raw string body: opening quote not yet consumed, terminated by
    /// `"` followed by `hashes` `#` characters.
    fn raw_string_literal(&mut self, hashes: usize) {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Lit, line, col);
    }

    /// Disambiguates `'a'` / `'\n'` (char literals) from `'a` /
    /// `'static` (lifetimes). Lifetimes produce no token — no lint
    /// needs them.
    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col);
        match (self.peek(1), self.peek(2)) {
            // Escaped char literal: consume through the closing quote.
            (Some('\\'), _) => {
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push_tok(TokKind::Lit, line, col);
            }
            // 'x' with x an ident char and a closing quote: char literal.
            (Some(c), Some('\'')) if is_ident_continue(c) => {
                self.bump();
                self.bump();
                self.bump();
                self.push_tok(TokKind::Lit, line, col);
            }
            // 'ident (no closing quote right after): a lifetime.
            (Some(c), _) if is_ident_start(c) => {
                self.bump();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            // Non-ident char literal like '(' or ' '.
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.bump();
                self.push_tok(TokKind::Lit, line, col);
            }
            _ => {
                // Stray quote (malformed source); consume and move on.
                self.bump();
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// (which rustc would reject) degrades to best-effort tokens rather
/// than an error, so the lint pass can always run.
pub fn lex(src: &str) -> LexedFile {
    Lexer::new(src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn tokens_carry_one_based_positions() {
        let f = lex("let x = 1;\n  foo.bar();\n");
        let foo = f.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!((foo.line, foo.col), (2, 3));
        let dot = f.tokens.iter().find(|t| t.is_punct('.')).unwrap();
        assert_eq!((dot.line, dot.col), (2, 6));
    }

    #[test]
    fn strings_hide_their_contents() {
        // `unwrap` inside a string or comment must not produce a token.
        let f = lex("let s = \"unwrap() // not code\"; s.len();");
        assert_eq!(
            idents("let s = \"unwrap()\"; s.len();"),
            ["let", "s", "s", "len"]
        );
        assert!(f.tokens.iter().all(|t| !t.is_ident("unwrap")));
        assert!(f.comments.is_empty(), "// inside a string is not a comment");
    }

    #[test]
    fn raw_strings_with_hashes_and_escapes() {
        let f = lex(r####"let s = r#"quote " and \ backslash"# ; end"####);
        assert_eq!(
            f.tokens
                .iter()
                .filter_map(|t| t.ident())
                .collect::<Vec<_>>(),
            ["let", "s", "end"]
        );
        // Byte and raw-byte strings too.
        assert_eq!(
            idents(r#"let b = b"bytes \" more"; done"#),
            ["let", "b", "done"]
        );
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        assert_eq!(idents("let r#unsafe = 1;"), ["let", "unsafe"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // 'a in a generic position must not swallow `>` as a char body.
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.tokens.iter().any(|t| t.is_punct('>')));
        assert_eq!(
            f.tokens
                .iter()
                .filter_map(|t| t.ident())
                .collect::<Vec<_>>(),
            ["fn", "f", "x", "str", "str", "x"]
        );
        // While real char literals lex as literals.
        let f = lex("let c = 'x'; let n = '\\n';");
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Lit).count(),
            2
        );
    }

    #[test]
    fn comments_record_position_and_trailingness() {
        let f = lex("// standalone\nlet x = 1; // trailing\n/* block\nspan */ let y = 2;\n");
        assert_eq!(f.comments.len(), 3);
        assert!(!f.comments[0].trailing);
        assert_eq!(f.comments[0].text.trim(), "standalone");
        assert!(f.comments[1].trailing);
        assert_eq!((f.comments[2].line, f.comments[2].end_line), (3, 4));
        assert!(!f.comments[2].trailing);
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(f.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ let x = 1;"), ["let", "x"]);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let f = lex("for i in 0..10 { a[i / 2]; }");
        let dots = f.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps both range dots");
    }
}
