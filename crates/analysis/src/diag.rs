//! Lint identifiers and span-accurate diagnostics.

use std::fmt;

/// Stable identifiers for every lint `memcom-lint` knows.
///
/// IDs are append-only: a published ID never changes meaning, so
/// suppression comments in the tree stay valid across tool versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Malformed `memcom-lint:` directives: an `allow` without a
    /// written reason, an unknown directive word, an unknown lint ID,
    /// an unmatched hot-path fence. The suppression machinery itself
    /// must stay auditable.
    L000,
    /// `unsafe` without an immediately preceding `// SAFETY:` comment
    /// (a `/// # Safety` doc section also counts, for `unsafe fn`
    /// declarations whose contract lives in rustdoc).
    L001,
    /// `Instant::now()` / `SystemTime::now()` inside a
    /// `// memcom-lint: hot-path` fenced region, unless the call is
    /// visibly gated behind a telemetry flag (`.then(Instant::now)` /
    /// `.map(|_| Instant::now())` on the same line). Mechanizes the
    /// "telemetry `off()` = zero clock reads on the hot path"
    /// guarantee.
    L002,
    /// `unwrap()` / `expect()` / `panic!` family / slice-index-
    /// without-`get` in the wire decode and server reply paths, where
    /// hostile bytes must produce typed answers, never a panic.
    L003,
    /// `Ordering::Relaxed` on a counter named in the documented
    /// `issued >= requests + shed + expired` contract without an
    /// `// ORDERING:` justification comment.
    L004,
    /// A bare `as u8` / `as u16` / `as u32` narrowing on a wire-encode
    /// path — the silent-truncation bug class the PR 8 hardening
    /// removed; use `try_from` and answer a typed error instead.
    L005,
}

impl LintId {
    /// All lints, in ID order.
    pub const ALL: [LintId; 6] = [
        LintId::L000,
        LintId::L001,
        LintId::L002,
        LintId::L003,
        LintId::L004,
        LintId::L005,
    ];

    /// The stable `L00x` code.
    pub fn code(self) -> &'static str {
        match self {
            LintId::L000 => "L000",
            LintId::L001 => "L001",
            LintId::L002 => "L002",
            LintId::L003 => "L003",
            LintId::L004 => "L004",
            LintId::L005 => "L005",
        }
    }

    /// The stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintId::L000 => "lint-directive",
            LintId::L001 => "undocumented-unsafe",
            LintId::L002 => "hot-path-clock",
            LintId::L003 => "panic-on-wire",
            LintId::L004 => "relaxed-ordering-audit",
            LintId::L005 => "as-truncation",
        }
    }

    /// One-line description for the catalog listing.
    pub fn summary(self) -> &'static str {
        match self {
            LintId::L000 => "memcom-lint directives must parse and carry reasons",
            LintId::L001 => "every `unsafe` needs an immediately preceding `// SAFETY:` comment",
            LintId::L002 => "no Instant::now()/SystemTime::now() inside `hot-path` fences",
            LintId::L003 => "no unwrap/expect/panic!/bare indexing on wire decode & reply paths",
            LintId::L004 => {
                "Ordering::Relaxed on contract counters needs an `// ORDERING:` comment"
            }
            LintId::L005 => "no bare `as u8/u16/u32` narrowing on wire-encode paths",
        }
    }

    /// Parses `"L001"` (case-sensitive) back to an ID.
    pub fn parse(code: &str) -> Option<LintId> {
        LintId::ALL.into_iter().find(|id| id.code() == code)
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One violation at an exact source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the checked root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which lint fired.
    pub lint: LintId,
    /// What is wrong, specifically, at this site.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.lint, self.message
        )
    }
}
