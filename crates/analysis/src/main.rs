//! `memcom-lint` — the CLI front end for [`memcom_analysis`].
//!
//! ```text
//! memcom-lint check [--root DIR]   # lint the tree; exit 1 on violations
//! memcom-lint lints                # print the lint catalog
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use memcom_analysis::check_workspace;
use memcom_analysis::diag::LintId;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("lints") => cmd_lints(),
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("missing command"),
    }
}

fn cmd_check(rest: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("memcom-lint: cannot check {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    eprintln!(
        "memcom-lint: {} file(s) checked, {} violation(s), {} suppressed with written reasons",
        report.files_checked,
        report.diagnostics.len(),
        report.suppressed,
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_lints() -> ExitCode {
    println!("memcom-lint catalog ({} lints):", LintId::ALL.len());
    for id in LintId::ALL {
        println!("  {} {:<24} {}", id.code(), id.name(), id.summary());
    }
    println!();
    println!("suppress with:  // memcom-lint: allow(<ids>) -- <reason>   (reason required)");
    println!("fence hot code: // memcom-lint: hot-path … // memcom-lint: end-hot-path");
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("memcom-lint: {problem}");
    eprintln!("usage: memcom-lint check [--root DIR] | memcom-lint lints");
    ExitCode::from(2)
}
