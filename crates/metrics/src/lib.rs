//! Evaluation metrics: accuracy, top-k accuracy, and nDCG.
//!
//! The paper's two experiment families report percentage **accuracy loss**
//! (classification, Figure 1) and percentage **nDCG loss** (ranking,
//! Figures 2–3) relative to the uncompressed baseline; this crate provides
//! those metrics plus the relative-loss helper every figure shares.
//!
//! # Example
//!
//! ```
//! use memcom_metrics::{accuracy, relative_loss_pct};
//!
//! let acc = accuracy(&[0, 1, 2], &[0, 1, 1]);
//! assert!((acc - 2.0 / 3.0).abs() < 1e-6);
//! // A compressed model at 0.60 vs a baseline at 0.64 lost 6.25%.
//! assert!((relative_loss_pct(0.64, 0.60) - 6.25).abs() < 1e-4);
//! ```

/// Fraction of predictions equal to their label.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty — a harness bug,
/// not a data condition.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    assert!(
        !labels.is_empty(),
        "accuracy over an empty set is undefined"
    );
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / labels.len() as f64
}

/// Fraction of examples whose label appears in the top-`k` scored classes.
///
/// `scores` is row-major `[n_examples, n_classes]`.
///
/// # Panics
///
/// Panics on inconsistent dimensions, `k == 0`, or empty input.
pub fn top_k_accuracy(scores: &[f32], n_classes: usize, labels: &[usize], k: usize) -> f64 {
    assert!(k > 0, "top-k needs k >= 1");
    assert!(n_classes > 0 && !labels.is_empty(), "empty inputs");
    assert_eq!(
        scores.len(),
        labels.len() * n_classes,
        "score matrix shape mismatch"
    );
    let mut hits = 0usize;
    for (row, &label) in labels.iter().enumerate() {
        let row_scores = &scores[row * n_classes..(row + 1) * n_classes];
        let label_score = row_scores[label];
        // Rank = number of classes scoring strictly higher (ties favour
        // the label, matching Keras's in_top_k).
        let higher = row_scores.iter().filter(|&&s| s > label_score).count();
        if higher < k {
            hits += 1;
        }
    }
    hits as f64 / labels.len() as f64
}

/// The rank (0-based) of `label` under `scores`, counting strictly higher
/// scores (ties resolve in the label's favour).
pub fn rank_of(scores: &[f32], label: usize) -> usize {
    let target = scores[label];
    scores.iter().filter(|&&s| s > target).count()
}

/// DCG of a ranked relevance list: `Σ relevanceᵢ / log₂(i + 2)`.
pub fn dcg(relevances_in_rank_order: &[f64]) -> f64 {
    relevances_in_rank_order
        .iter()
        .enumerate()
        .map(|(i, &rel)| rel / ((i + 2) as f64).log2())
        .sum()
}

/// nDCG for graded relevances: DCG of the given ordering divided by the
/// DCG of the ideal (descending-relevance) ordering. Returns 1.0 when
/// every relevance is zero (both DCGs vanish).
pub fn ndcg(relevances_in_rank_order: &[f64]) -> f64 {
    let actual = dcg(relevances_in_rank_order);
    let mut ideal_order = relevances_in_rank_order.to_vec();
    ideal_order.sort_by(|a, b| b.partial_cmp(a).expect("relevances must not be NaN"));
    let ideal = dcg(&ideal_order);
    if ideal == 0.0 {
        1.0
    } else {
        actual / ideal
    }
}

/// nDCG of a single-relevant-item ranking, the setting of the paper's
/// §5.2 evaluation (the held-out next interaction is the one relevant
/// item): `1 / log₂(rank + 2)`, which is 1.0 at rank 0.
pub fn single_relevant_ndcg(rank: usize) -> f64 {
    1.0 / ((rank + 2) as f64).log2()
}

/// Mean single-relevant nDCG over a batch of score rows.
///
/// `scores` is row-major `[n_examples, n_classes]`; `labels[i]` is the
/// relevant class of example `i`.
///
/// # Panics
///
/// Panics on inconsistent dimensions or empty input.
pub fn mean_ndcg(scores: &[f32], n_classes: usize, labels: &[usize]) -> f64 {
    assert!(n_classes > 0 && !labels.is_empty(), "empty inputs");
    assert_eq!(
        scores.len(),
        labels.len() * n_classes,
        "score matrix shape mismatch"
    );
    let total: f64 = labels
        .iter()
        .enumerate()
        .map(|(row, &label)| {
            let row_scores = &scores[row * n_classes..(row + 1) * n_classes];
            single_relevant_ndcg(rank_of(row_scores, label))
        })
        .sum();
    total / labels.len() as f64
}

/// Percentage loss of `value` relative to `baseline` — the y-axis of
/// Figures 1–3 ("percentage loss in accuracy/nDCG compared to the
/// uncompressed model"). Negative results mean the compressed model won.
pub fn relative_loss_pct(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - value) / baseline * 100.0
    }
}

/// Pairwise ranking accuracy: fraction of pairs where the preferred item
/// outscored the other (ties count as failures). Used to monitor RankNet
/// training.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty.
pub fn pairwise_accuracy(preferred_scores: &[f32], other_scores: &[f32]) -> f64 {
    assert_eq!(
        preferred_scores.len(),
        other_scores.len(),
        "pair length mismatch"
    );
    assert!(!preferred_scores.is_empty(), "empty pair set");
    let wins = preferred_scores
        .iter()
        .zip(other_scores)
        .filter(|(p, o)| p > o)
        .count();
    wins as f64 / preferred_scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[1, 2, 3]), 0.0);
        assert!((accuracy(&[1, 0], &[1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_checked() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn top_k_behaviour() {
        // Scores: example 0 ranks classes [2, 1, 0]; label 0 is rank 2.
        let scores = [0.1f32, 0.5, 0.9];
        assert_eq!(top_k_accuracy(&scores, 3, &[0], 1), 0.0);
        assert_eq!(top_k_accuracy(&scores, 3, &[0], 3), 1.0);
        assert_eq!(top_k_accuracy(&scores, 3, &[2], 1), 1.0);
    }

    #[test]
    fn top_k_tie_favours_label() {
        let scores = [0.5f32, 0.5];
        assert_eq!(top_k_accuracy(&scores, 2, &[1], 1), 1.0);
    }

    #[test]
    fn rank_of_counts_strictly_higher() {
        assert_eq!(rank_of(&[0.9, 0.5, 0.1], 0), 0);
        assert_eq!(rank_of(&[0.9, 0.5, 0.1], 2), 2);
        assert_eq!(rank_of(&[0.5, 0.5], 1), 0);
    }

    #[test]
    fn dcg_hand_computed() {
        // rel [3, 2, 0]: 3/log2(2) + 2/log2(3) + 0 = 3 + 2/1.58496.
        let got = dcg(&[3.0, 2.0, 0.0]);
        assert!((got - (3.0 + 2.0 / 3f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn ndcg_perfect_and_worst() {
        assert!((ndcg(&[3.0, 2.0, 1.0]) - 1.0).abs() < 1e-12);
        let worst = ndcg(&[1.0, 2.0, 3.0]);
        assert!(worst < 1.0 && worst > 0.0);
        assert_eq!(ndcg(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn single_relevant_matches_general() {
        // Single relevant item at rank r ⇒ relevance vector with one 1.
        for rank in 0..5 {
            let mut rel = vec![0.0; 6];
            rel[rank] = 1.0;
            assert!((ndcg(&rel) - single_relevant_ndcg(rank)).abs() < 1e-12);
        }
        assert_eq!(single_relevant_ndcg(0), 1.0);
    }

    #[test]
    fn mean_ndcg_over_batch() {
        // Two examples: label ranked 0 (ndcg 1.0) and ranked 1 (1/log2(3)).
        let scores = [0.9f32, 0.1, 0.4, 0.6];
        let got = mean_ndcg(&scores, 2, &[0, 0]);
        let want = (1.0 + 1.0 / 3f64.log2()) / 2.0;
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn relative_loss_signs() {
        assert!((relative_loss_pct(0.8, 0.4) - 50.0).abs() < 1e-12);
        assert!(relative_loss_pct(0.5, 0.6) < 0.0); // compressed model won
        assert_eq!(relative_loss_pct(0.0, 0.5), 0.0);
    }

    #[test]
    fn pairwise_accuracy_counts_wins() {
        assert_eq!(pairwise_accuracy(&[1.0, 2.0], &[0.0, 3.0]), 0.5);
        assert_eq!(pairwise_accuracy(&[1.0], &[1.0]), 0.0); // tie = failure
    }

    proptest! {
        #[test]
        fn prop_ndcg_in_unit_interval(rels in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            let v = ndcg(&rels);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }

        #[test]
        fn prop_ndcg_ideal_ordering_is_max(rels in proptest::collection::vec(0.0f64..10.0, 1..15)) {
            let mut ideal = rels.clone();
            ideal.sort_by(|a, b| b.partial_cmp(a).unwrap());
            prop_assert!(ndcg(&ideal) >= ndcg(&rels) - 1e-12);
        }

        #[test]
        fn prop_single_relevant_decreasing(rank in 0usize..100) {
            prop_assert!(single_relevant_ndcg(rank) > single_relevant_ndcg(rank + 1));
        }

        #[test]
        fn prop_accuracy_bounds(n in 1usize..50, seed in 0u64..100) {
            let preds: Vec<usize> = (0..n).map(|i| ((i as u64 * seed) % 5) as usize).collect();
            let labels: Vec<usize> = (0..n).map(|i| i % 5).collect();
            let a = accuracy(&preds, &labels);
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }
}
