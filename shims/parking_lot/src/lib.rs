//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, implemented over `std::sync`.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of parking_lot's API it uses: [`Mutex`], [`RwLock`], and
//! [`Condvar`] with parking_lot's *non-poisoning* semantics (a panic while
//! holding a guard does not poison the lock — the next locker simply
//! proceeds, matching parking_lot's behaviour, not std's).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard by value
    // (std's `wait` consumes it) while callers hold `&mut MutexGuard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout (vs. notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`] (parking_lot-style
/// `&mut guard` API).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || assert_eq!(*l.read(), 7));
            }
        });
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        handle.join().expect("notifier thread");
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock stays usable after a holder panicked");
    }
}
