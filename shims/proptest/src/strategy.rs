//! Value-generation strategies (sampling only; no shrink trees).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Uniformly picks one of several same-typed strategies per sample
/// (backs [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds from a non-empty option list.
    ///
    /// # Panics
    ///
    /// Panics on an empty list — a test-authoring bug.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
