//! Deterministic RNG for property tests.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};

/// The RNG threaded through every strategy sample.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds deterministically from a test name (FNV-1a), so each property
    /// test sees the same case sequence on every run and machine.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform draw from a range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform `bool`.
    pub fn gen_bool_raw(&mut self) -> bool {
        self.inner.gen()
    }
}
