//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive length range for [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
