//! One-import surface for property tests (mirrors `proptest::prelude`).

pub use crate::strategy::{Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
