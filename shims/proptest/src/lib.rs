//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of proptest's API its tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`strategy::Just`], and
//! [`prop_oneof!`].
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! **not shrunk** — each test runs [`CASES`] deterministic random cases
//! (seeded from the test's name) and fails with a plain assertion message.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Number of sampled cases per property test.
pub const CASES: usize = 64;

/// Runs each contained `#[test] fn name(pattern in strategy, ...) { .. }`
/// body over [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($( #[test] $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )+) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $crate::__prop_bind!(__proptest_rng; $($params)*);
                    $body
                }
            }
        )+
    };
}

/// Internal: binds `pattern in strategy` pairs to sampled values.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $pat:pat_param in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Uniformly picks one of several same-typed strategies per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}
