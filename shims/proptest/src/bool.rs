//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding uniformly random booleans.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random booleans (mirrors `proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool_raw()
    }
}
