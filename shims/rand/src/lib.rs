//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *subset* of rand 0.8's API that the MEmCom reproduction uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill_bytes`
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (high-quality,
//!   deterministic, *not* the upstream ChaCha12, so streams differ from
//!   upstream rand — every experiment in this repo seeds through this crate,
//!   so results remain self-consistent)
//! * [`seq::SliceRandom`] with `shuffle` / `choose`
//!
//! Everything is deterministic given a seed; nothing touches OS entropy.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (see [`Rng::gen`]).
pub trait StandardSample: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform on [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform-range sampler (see [`Rng::gen_range`]).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = low + u * (high - low);
                // Floating-point rounding can land exactly on `high`; fold
                // that measure-zero edge back into the range.
                if v < high { v } else { low }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let u = <$t as StandardSample>::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&y));
            let z = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&z));
        }
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 5 values should appear in 1000 draws"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let dynamic: &mut dyn RngCore = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynamic)));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
