//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard seeded generator: **xoshiro256++**
/// (Blackman & Vigna, 2019).
///
/// Upstream rand 0.8 backs `StdRng` with ChaCha12, so byte streams differ
/// from upstream; every consumer in this workspace seeds through this type,
/// which keeps all experiments reproducible among themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; reseed it
        // deterministically.
        if s.iter().all(|&w| w == 0) {
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}
