//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, an iteration count is
//! calibrated so one sample takes roughly `measurement_time / sample_size`,
//! then `sample_size` samples are timed and the median/min/max per-iteration
//! times are reported as text. No plotting, no statistics beyond that —
//! enough to compare configurations locally and keep `cargo bench` honest.

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name and optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures under a calibrated iteration count.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher<'_> {
    /// Measures `f`, called repeatedly back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count whose sample
        // time lands near the per-sample budget.
        let budget = self.config.measurement_time / self.config.sample_size as u32;
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        let budget_ns = budget.as_nanos() as f64;
        let per_sample = ((budget_ns / per_iter_ns.max(1.0)).ceil() as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                hint::black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Sample {
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: *samples.last().expect("sample_size >= 1"),
        });
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

/// The benchmark manager (shim of `criterion::Criterion`).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.config.clone(),
            name: name.into(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    config: Config,
    name: String,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config, &label, self.throughput, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&self.config, &label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Config,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(s) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!(
                        "  thrpt: {}/s",
                        human_rate(n as f64 * 1e9 / s.median_ns, "elem")
                    )
                }
                Throughput::Bytes(n) => {
                    format!(
                        "  thrpt: {}/s",
                        human_rate(n as f64 * 1e9 / s.median_ns, "B")
                    )
                }
            });
            println!(
                "{label:<50} time: [{} {} {}]{}",
                human_time(s.min_ns),
                human_time(s.median_ns),
                human_time(s.max_ns),
                rate.unwrap_or_default()
            );
        }
        None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Declares a benchmark group function (both upstream forms accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("lookup", 8).to_string(), "lookup/8");
        assert_eq!(BenchmarkId::from_parameter("memcom").to_string(), "memcom");
    }
}
