//! Cross-crate integration tests: the full train → compress → evaluate →
//! deploy pipeline, exercising every subsystem together.

use memcom::core::{MemCom, MethodSpec};
use memcom::data::DatasetSpec;
use memcom::models::trainer::{train, TrainConfig};
use memcom::models::{ModelConfig, ModelKind, RecModel};
use memcom::ondevice::format::OnDeviceModel;
use memcom::ondevice::{ComputeUnit, Dtype, InferenceSession};

fn tiny_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::movielens().scaled(1_000_000);
    spec.train_samples = 600;
    spec.eval_samples = 200;
    spec.input_len = 16;
    spec
}

fn model_config(spec: &DatasetSpec, kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        vocab: spec.input_vocab(),
        embedding_dim: 16,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.05,
        seed: 5,
    }
}

#[test]
fn memcom_beats_naive_hashing_at_matched_hash_size() {
    // The paper's central claim, end to end: at the same shared-table
    // size, MEmCom's per-entity multipliers recover accuracy that naive
    // hashing loses to collisions.
    let spec = tiny_spec();
    let data = spec.generate(77);
    let m = spec.input_vocab() / 16; // aggressive compression
    let train_config = TrainConfig {
        epochs: 8,
        batch_size: 32,
        ..TrainConfig::default()
    };

    let run = |method: &MethodSpec, seed: u64| {
        let config = ModelConfig {
            seed,
            ..model_config(&spec, ModelKind::Classifier)
        };
        let mut model = RecModel::new(&config, method).expect("model builds");
        let cfg = TrainConfig {
            seed,
            ..train_config.clone()
        };
        train(&mut model, &data.train, &data.eval, &cfg)
            .expect("training succeeds")
            .eval_ndcg
    };

    // Average two seeds to damp training noise.
    let memcom: f64 = [1u64, 2]
        .iter()
        .map(|&s| {
            run(
                &MethodSpec::MemCom {
                    hash_size: m,
                    bias: false,
                },
                s,
            )
        })
        .sum::<f64>()
        / 2.0;
    let naive: f64 = [1u64, 2]
        .iter()
        .map(|&s| run(&MethodSpec::NaiveHash { hash_size: m }, s))
        .sum::<f64>()
        / 2.0;
    assert!(
        memcom > naive - 0.01,
        "memcom ndcg {memcom:.4} should not lose to naive hashing {naive:.4}"
    );
}

#[test]
fn serialized_model_matches_training_stack_everywhere() {
    // Train briefly, serialize, and check on-device logits equal the
    // training stack's across a batch of eval users.
    let spec = tiny_spec();
    let data = spec.generate(3);
    let config = model_config(&spec, ModelKind::PointwiseRanker);
    let mut model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: spec.input_vocab() / 8,
            bias: true,
        },
    )
    .expect("model builds");
    train(
        &mut model,
        &data.train,
        &data.eval,
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    )
    .expect("training succeeds");

    let bytes =
        OnDeviceModel::serialize(model.embedding(), model.head(), spec.input_len, Dtype::F32)
            .expect("serializes");
    let session = InferenceSession::new(OnDeviceModel::parse(bytes).expect("parses"));
    for ex in data.eval.iter().take(20) {
        let (device, _) = session.run(&ex.input_ids).expect("device inference");
        let server = model.infer(&ex.input_ids, 1).expect("server inference");
        for (a, b) in device.iter().zip(server.as_slice()) {
            assert!((a - b).abs() < 1e-3, "device {a} vs server {b}");
        }
    }
}

#[test]
fn quantization_degrades_gracefully_not_catastrophically_at_8_bits() {
    // Figure 4's shape at integration scale: int8 logits stay close to
    // fp32 logits; int2 visibly drifts.
    let spec = tiny_spec();
    let data = spec.generate(4);
    let config = model_config(&spec, ModelKind::Classifier);
    let mut model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: spec.input_vocab() / 8,
            bias: false,
        },
    )
    .expect("model builds");
    train(
        &mut model,
        &data.train,
        &data.eval,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    )
    .expect("training succeeds");

    let logits_at = |dtype: Dtype| {
        let bytes =
            OnDeviceModel::serialize(model.embedding(), model.head(), spec.input_len, dtype)
                .expect("serializes");
        let session = InferenceSession::new(OnDeviceModel::parse(bytes).expect("parses"));
        let (logits, _) = session.run(&data.eval[0].input_ids).expect("runs");
        logits
    };
    let f32_logits = logits_at(Dtype::F32);
    let int8_logits = logits_at(Dtype::Int8);
    let int2_logits = logits_at(Dtype::Int2);
    let err = |a: &[f32], b: &[f32]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0f32, f32::max)
    };
    let e8 = err(&f32_logits, &int8_logits);
    let e2 = err(&f32_logits, &int2_logits);
    assert!(e8 < e2, "int8 error {e8} should be below int2 error {e2}");
}

#[test]
fn memcom_model_files_are_smaller_on_disk() {
    // The on-disk compression the paper ships: MEmCom's file beats the
    // uncompressed file by roughly the embedding compression ratio.
    let spec = tiny_spec();
    let config = model_config(&spec, ModelKind::PointwiseRanker);
    let full = RecModel::new(&config, &MethodSpec::Uncompressed).expect("builds");
    let compressed = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: spec.input_vocab() / 16,
            bias: false,
        },
    )
    .expect("builds");
    let size = |m: &RecModel| {
        OnDeviceModel::serialize(m.embedding(), m.head(), spec.input_len, Dtype::F32)
            .expect("serializes")
            .len()
    };
    let full_size = size(&full);
    let memcom_size = size(&compressed);
    assert!(
        (memcom_size as f64) < full_size as f64 / 2.0,
        "memcom file {memcom_size} should be well under half of {full_size}"
    );
}

/// Runtime-only model at Table-3-like scale (no training needed): big
/// enough that the file spans hundreds of mmap pages.
fn runtime_scale_stats(method: &MethodSpec) -> memcom::ondevice::RunStats {
    // Table-3-like geometry: 512-byte embedding rows over a multi-MB
    // table, so a 64-id query can only warm a sliver of the pages.
    let (vocab, e, input_len) = (50_000usize, 128usize, 64usize);
    let config = ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab,
        embedding_dim: e,
        input_len,
        n_classes: 50,
        dropout: 0.0,
        seed: 9,
    };
    let model = RecModel::new(&config, method).expect("builds");
    let bytes = OnDeviceModel::serialize(model.embedding(), model.head(), input_len, Dtype::F32)
        .expect("serializes");
    let session = InferenceSession::new(OnDeviceModel::parse(bytes).expect("parses"));
    let ids: Vec<usize> = (0..input_len).map(|i| (i * 37) % vocab).collect();
    let (_, stats) = session.run(&ids).expect("runs");
    stats
}

#[test]
fn lookup_engine_touches_fraction_of_file_onehot_touches_all() {
    // §5.3's mmap story as an invariant: after one query, the MEmCom
    // session leaves most embedding pages cold; the one-hot session has
    // effectively the whole kernel resident.
    let m = 10_000;
    let memcom = runtime_scale_stats(&MethodSpec::MemCom {
        hash_size: m,
        bias: false,
    });
    let onehot = runtime_scale_stats(&MethodSpec::WeinbergerOneHot { hash_size: m });
    // One-hot faults in its whole 10000×128×4 ≈ 5 MB kernel; MEmCom
    // touches ≤ 64 shared rows (+ scattered multiplier pages).
    assert!(
        onehot.resident_model_bytes as f64 > 0.9 * (m * 128 * 4) as f64,
        "one-hot kernel should be fully resident, got {}",
        onehot.resident_model_bytes
    );
    assert!(
        memcom.resident_model_bytes < onehot.resident_model_bytes,
        "memcom resident {} must be below one-hot {}",
        memcom.resident_model_bytes,
        onehot.resident_model_bytes
    );
}

#[test]
fn table3_orderings_hold_on_all_units() {
    // MEmCom beats Weinberger on simulated time and footprint everywhere.
    let m = 10_000;
    let memcom = runtime_scale_stats(&MethodSpec::MemCom {
        hash_size: m,
        bias: false,
    });
    let onehot = runtime_scale_stats(&MethodSpec::WeinbergerOneHot { hash_size: m });
    for unit in ComputeUnit::all() {
        assert!(
            memcom.time_ms(unit) < onehot.time_ms(unit),
            "{unit:?}: memcom {} ms vs weinberger {} ms",
            memcom.time_ms(unit),
            onehot.time_ms(unit)
        );
        assert!(
            memcom.footprint_mb(unit) <= onehot.footprint_mb(unit),
            "{unit:?}: footprints"
        );
    }
}

#[test]
fn uniqueness_audit_passes_on_trained_integration_model() {
    // §A.4 at integration scale.
    let spec = tiny_spec();
    let data = spec.generate(6);
    let config = model_config(&spec, ModelKind::Classifier);
    let mut model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: spec.input_vocab() / 16,
            bias: false,
        },
    )
    .expect("model builds");
    train(
        &mut model,
        &data.train,
        &data.eval,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    )
    .expect("training succeeds");
    let memcom = model
        .embedding()
        .as_any()
        .downcast_ref::<MemCom>()
        .expect("memcom embedding");
    let report = memcom::core::uniqueness::audit(memcom);
    assert!(
        report.distinct_fraction() > 0.99,
        "trained multipliers should be distinct: {report}"
    );
}
