//! Integration tests for the appendix experiments: DP training (§A.3),
//! fixed-size budgeting (§A.1), and quantized file sizing (§A.2).

use memcom::core::budget::{memcom_model_params, solve_memcom_dim, BYTES_PER_PARAM};
use memcom::core::MethodSpec;
use memcom::data::DatasetSpec;
use memcom::dp::rdp::compute_epsilon;
use memcom::models::{ModelConfig, ModelKind, RecModel};
use memcom::ondevice::format::OnDeviceModel;
use memcom::ondevice::Dtype;
use memcom_bench::dp_train::{dp_train, DpTrainConfig};

fn tiny_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::arcade().scaled(1_000_000);
    spec.train_samples = 200;
    spec.eval_samples = 80;
    spec.input_len = 12;
    spec
}

#[test]
fn dp_trained_model_still_learns_at_low_noise() {
    let spec = tiny_spec();
    let data = spec.generate(31);
    let config = ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab: spec.input_vocab(),
        embedding_dim: 8,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.0,
        seed: 2,
    };
    let mut model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: spec.input_vocab() / 4,
            bias: false,
        },
    )
    .expect("builds");
    let report = dp_train(
        &mut model,
        &data.train,
        &data.eval,
        &DpTrainConfig {
            epochs: 3,
            lot_size: 25,
            noise_multiplier: 0.3,
            lr: 0.3,
            ..DpTrainConfig::default()
        },
    )
    .expect("dp training succeeds");
    // Low noise: should beat chance on nDCG and report finite epsilon.
    let chance_ndcg = 0.25; // untrained models land around here for 20 classes
    assert!(
        report.eval_ndcg > chance_ndcg,
        "dp-trained ndcg {} stuck at chance",
        report.eval_ndcg
    );
    assert!(report.epsilon.is_finite() && report.epsilon > 0.0);
}

#[test]
fn privacy_accounting_composes_with_training_duration() {
    // Twice the epochs ⇒ twice the steps ⇒ strictly more epsilon.
    let spec = tiny_spec();
    let data = spec.generate(32);
    let eps_for_epochs = |epochs: usize| {
        let config = ModelConfig {
            kind: ModelKind::PointwiseRanker,
            vocab: spec.input_vocab(),
            embedding_dim: 8,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.0,
            seed: 2,
        };
        let mut model = RecModel::new(&config, &MethodSpec::Uncompressed).expect("builds");
        dp_train(
            &mut model,
            &data.train,
            &data.eval,
            &DpTrainConfig {
                epochs,
                lot_size: 50,
                noise_multiplier: 1.0,
                ..DpTrainConfig::default()
            },
        )
        .expect("dp training succeeds")
        .epsilon
    };
    let one = eps_for_epochs(1);
    let three = eps_for_epochs(3);
    assert!(
        three > one,
        "epsilon must grow with training: {one} vs {three}"
    );
}

#[test]
fn accountant_matches_direct_computation() {
    // The dp_train loop must account exactly q = lot/N over its steps.
    let spec = tiny_spec();
    let data = spec.generate(33);
    let config = ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab: spec.input_vocab(),
        embedding_dim: 8,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.0,
        seed: 2,
    };
    let mut model = RecModel::new(&config, &MethodSpec::Uncompressed).expect("builds");
    let report = dp_train(
        &mut model,
        &data.train,
        &data.eval,
        &DpTrainConfig {
            epochs: 2,
            lot_size: 50,
            noise_multiplier: 1.5,
            ..DpTrainConfig::default()
        },
    )
    .expect("dp training succeeds");
    let n = data.train.len() as f64;
    let direct = compute_epsilon(report.steps, 50.0 / n, 1.5, 1.0 / n).expect("accounting");
    assert!((report.epsilon - direct).abs() < 1e-9);
}

#[test]
fn budget_solver_reproduces_figure6_tradeoff_shape() {
    // Larger m at a fixed budget always forces smaller e, and the chosen
    // pair always fits (§A.1's binary search contract), across datasets.
    for spec in [DatasetSpec::movielens(), DatasetSpec::google_local()] {
        let v = spec.input_vocab();
        let out = spec.output_vocab;
        let budget = (v * 16 + 16 * out + out) * BYTES_PER_PARAM / 2;
        // Iterate m ascending: the solved e must be non-increasing.
        let mut last_e = usize::MAX;
        for divisor in [50usize, 10, 2] {
            let m = v / divisor;
            let e = solve_memcom_dim(budget, v, m, out, false, 8_192).expect("fits");
            assert!(memcom_model_params(v, e, m, out, false) * BYTES_PER_PARAM <= budget);
            assert!(e <= last_e, "e must shrink as m grows: {e} after {last_e}");
            last_e = e;
        }
    }
}

#[test]
fn quantized_files_shrink_by_the_expected_factors() {
    let spec = tiny_spec();
    let config = ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab: 5_000,
        embedding_dim: 32,
        input_len: spec.input_len,
        n_classes: 50,
        dropout: 0.0,
        seed: 1,
    };
    let model = RecModel::new(&config, &MethodSpec::Uncompressed).expect("builds");
    let size_at = |dtype: Dtype| {
        OnDeviceModel::serialize(model.embedding(), model.head(), spec.input_len, dtype)
            .expect("serializes")
            .len() as f64
    };
    let f32 = size_at(Dtype::F32);
    let f16 = size_at(Dtype::F16);
    let i8 = size_at(Dtype::Int8);
    let i2 = size_at(Dtype::Int2);
    // Embedding payload dominates, so ratios approach the bit ratios.
    assert!((f32 / f16 - 2.0).abs() < 0.2, "f16 ratio {}", f32 / f16);
    assert!((f32 / i8 - 4.0).abs() < 0.4, "int8 ratio {}", f32 / i8);
    assert!(f32 / i2 > 10.0, "int2 ratio {}", f32 / i2);
}

#[test]
fn generated_datasets_have_power_law_popularity() {
    // The §4 premise the whole evaluation rests on. Needs a vocabulary
    // large enough that the popularity head is well-resolved.
    let mut spec = DatasetSpec::movielens().scaled(8);
    spec.train_samples = 500;
    spec.eval_samples = 100;
    let data = spec.generate(9);
    let mut counts = vec![0usize; spec.input_vocab()];
    for ex in &data.train {
        for &id in &ex.input_ids {
            counts[id] += 1;
        }
    }
    // Top-decile items should absorb the majority of non-padding traffic.
    let mut item_counts: Vec<usize> = counts[1..].to_vec();
    item_counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = item_counts.iter().sum();
    let head: usize = item_counts[..item_counts.len() / 10].iter().sum();
    assert!(
        head * 2 > total,
        "head decile holds {head} of {total} draws — not power law"
    );
}
